// Fleet-layer tests: cross-daemon artifact sharing, single-flight
// coalescing, and the determinism differential — the acceptance bar that
// images stay byte-identical with the remote tier off, on, and
// fault-injected.

package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cache/cachetest"
)

// fleetRemote builds a Remote client against a flaky store, tuned fast.
func fleetRemote(t *testing.T, flaky *cachetest.Flaky) *cache.Remote {
	t.Helper()
	ts := flaky.Serve()
	t.Cleanup(ts.Close)
	return cache.NewRemote(cache.RemoteConfig{
		URL:              ts.URL,
		Timeout:          1 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
	})
}

func TestFleetKeySchema(t *testing.T) {
	base := JobRequest{App: "Taobao", Scale: 0.05, Config: "ltbo"}.withDefaults(0.25)

	same := base
	same.Workers = 7 // scheduling knob: must not change the key
	same.TimeoutMS = 12345
	if fleetKey(base) != fleetKey(same) {
		t.Fatal("Workers/TimeoutMS changed the job key; fleet sharing across -j is broken")
	}

	for name, mut := range map[string]func(*JobRequest){
		"app":     func(r *JobRequest) { r.App = "Wechat" },
		"scale":   func(r *JobRequest) { r.Scale = 0.06 },
		"config":  func(r *JobRequest) { r.Config = "plopti" },
		"version": func(r *JobRequest) { r.Version = 2; r.Delta = 0.1 },
		"trees":   func(r *JobRequest) { r.Trees = 4 },
		"rounds":  func(r *JobRequest) { r.Rounds = 2 },
		"dedup":   func(r *JobRequest) { r.Dedup = true },
	} {
		other := base
		mut(&other)
		if fleetKey(base) == fleetKey(other) {
			t.Errorf("mutating %s did not change the job key", name)
		}
	}
}

func TestFleetEligibility(t *testing.T) {
	ok := JobRequest{App: "Taobao", Config: "ltbo"}.withDefaults(0.25)
	if !fleetEligible(ok) {
		t.Fatal("plain app build should be fleet-eligible")
	}
	for name, mut := range map[string]func(*JobRequest){
		"dex":     func(r *JobRequest) { r.App = ""; r.Dex = []byte("dex payload") },
		"lint":    func(r *JobRequest) { r.Lint = true },
		"verify":  func(r *JobRequest) { r.Verify = true },
		"debloat": func(r *JobRequest) { r.Kind = KindDebloat },
	} {
		req := ok
		mut(&req)
		if fleetEligible(req) {
			t.Errorf("%s job should not be fleet-eligible", name)
		}
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	out := &buildOutput{
		image: []byte("oat image bytes"),
		stats: &JobStats{
			Kind: KindBuild, App: "Taobao", Config: "ltbo",
			Methods: 10, TextBytes: 1234, ImageBytes: 15,
			Workers: 8, CompileUS: 999, WallUS: 1000, LintFindings: -1,
		},
	}
	payload := encodeArtifact(out)
	if payload == nil {
		t.Fatal("encodeArtifact failed")
	}
	dec, ok := decodeArtifact(payload, 42*time.Microsecond, "artifact")
	if !ok {
		t.Fatal("decodeArtifact rejected its own encoding")
	}
	if !bytes.Equal(dec.image, out.image) {
		t.Fatal("image did not round-trip")
	}
	st := dec.stats
	if st.App != "Taobao" || st.Methods != 10 || st.TextBytes != 1234 {
		t.Fatalf("stats did not round-trip: %+v", st)
	}
	if st.CompileUS != 0 || st.WallUS != 0 || st.Workers != 0 {
		t.Fatalf("builder-machine fields not zeroed: %+v", st)
	}
	if st.QueueWaitUS != 42 || st.FleetSource != "artifact" {
		t.Fatalf("local stamps missing: %+v", st)
	}

	// Structural damage reads as not-ok, never a panic.
	for _, bad := range [][]byte{
		nil, {1, 2, 3},
		payload[:6],
		append([]byte{9, 9, 9, 9}, payload[4:]...), // wrong version
	} {
		if _, ok := decodeArtifact(bad, 0, "x"); ok {
			t.Fatalf("decodeArtifact accepted damaged payload %v", bad[:min(8, len(bad))])
		}
	}
	long := append([]byte(nil), payload...)
	long[4] = 0xFF // image length overruns the payload
	long[5] = 0xFF
	if _, ok := decodeArtifact(long, 0, "x"); ok {
		t.Fatal("decodeArtifact accepted overrun image length")
	}
}

// TestFleetCrossDaemonArtifact is the tentpole's core scenario: daemon A
// builds, daemon B serves the identical job from A's published artifact
// without building, and both images match the direct library build.
func TestFleetCrossDaemonArtifact(t *testing.T) {
	flaky := cachetest.NewFlaky(0)
	r := fleetRemote(t, flaky)
	req := JobRequest{App: "Taobao", Scale: 0.05, Config: "ltbo"}

	ca := cache.New()
	ca.SetRemote(r)
	sa, tsa := newTestServer(t, Config{Workers: 2, Cache: ca})
	_, sta := postJob(t, tsa, req)
	if fin := waitTerminal(t, tsa, sta.ID); fin.State != StateDone {
		t.Fatalf("daemon A job: %s (%s)", fin.State, fin.Error)
	}
	imgA := fetchImage(t, tsa, sta.ID)
	if sa.fleetWins.Load() != 1 {
		t.Fatalf("daemon A fleetWins = %d, want 1 (build + publish)", sa.fleetWins.Load())
	}

	// Daemon B: fresh local cache, same remote. The job must be served
	// from the artifact — no local build, misses don't grow.
	cb := cache.New()
	cb.SetRemote(r)
	sb, tsb := newTestServer(t, Config{Workers: 2, Cache: cb})
	_, stb := postJob(t, tsb, req)
	fin := waitTerminal(t, tsb, stb.ID)
	if fin.State != StateDone {
		t.Fatalf("daemon B job: %s (%s)", fin.State, fin.Error)
	}
	if sb.fleetHits.Load() != 1 {
		t.Fatalf("daemon B fleetHits = %d, want 1", sb.fleetHits.Load())
	}
	if fin.Stats.FleetSource != "artifact" {
		t.Fatalf("daemon B FleetSource = %q, want artifact", fin.Stats.FleetSource)
	}
	imgB := fetchImage(t, tsb, stb.ID)
	if !bytes.Equal(imgA, imgB) {
		t.Fatal("fleet-served image differs from builder's image")
	}
	if want := directImage(t, req); !bytes.Equal(imgB, want) {
		t.Fatal("fleet-served image differs from direct library build")
	}

	// Cross-daemon hit rate: B answered without compiling a thing.
	if misses := cb.Stats().Misses; misses != 0 {
		t.Fatalf("daemon B compiled (cache misses = %d) despite artifact hit", misses)
	}
}

// TestFleetCoalesce pins the loser path: with the claim already held by
// someone else, the daemon long-polls and serves the artifact the winner
// publishes instead of building.
func TestFleetCoalesce(t *testing.T) {
	flaky := cachetest.NewFlaky(0)
	r := fleetRemote(t, flaky)
	req := JobRequest{App: "Toutiao", Scale: 0.05, Config: "cto"}
	k := fleetKey(req.withDefaults(0.25))

	// A fake peer wins the election first.
	if res, ok := r.Claim(k); !ok || !res.Winner {
		t.Fatalf("pre-claim: %+v %v", res, ok)
	}

	c := cache.New()
	c.SetRemote(r)
	s, ts := newTestServer(t, Config{Workers: 2, Cache: c, FleetWait: 20 * time.Second})
	_, st := postJob(t, ts, req)

	// The "peer" builds and publishes while our daemon is parked.
	img := directImage(t, req)
	go func() {
		time.Sleep(300 * time.Millisecond)
		out := &buildOutput{image: img, stats: &JobStats{
			Kind: KindBuild, App: "Toutiao", Config: "cto",
			ImageBytes: len(img), LintFindings: -1,
		}}
		r.Put(k, cache.Seal(encodeArtifact(out)))
	}()

	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("coalesced job: %s (%s)", fin.State, fin.Error)
	}
	if fin.Stats.FleetSource != "coalesced" {
		t.Fatalf("FleetSource = %q, want coalesced", fin.Stats.FleetSource)
	}
	if s.fleetCoalesced.Load() != 1 {
		t.Fatalf("fleetCoalesced = %d, want 1", s.fleetCoalesced.Load())
	}
	if got := fetchImage(t, ts, st.ID); !bytes.Equal(got, img) {
		t.Fatal("coalesced image differs from the winner's publication")
	}
}

// TestFleetCoalesceFallback pins the abandoned-winner path: the claim
// holder never publishes, the loser's wait expires, and the job still
// completes — locally, correctly, within its own deadline.
func TestFleetCoalesceFallback(t *testing.T) {
	flaky := cachetest.NewFlaky(0)
	r := fleetRemote(t, flaky)
	req := JobRequest{App: "Toutiao", Scale: 0.05, Config: "cto"}
	k := fleetKey(req.withDefaults(0.25))

	if res, ok := r.Claim(k); !ok || !res.Winner {
		t.Fatalf("pre-claim: %+v %v", res, ok)
	}

	c := cache.New()
	c.SetRemote(r)
	s, ts := newTestServer(t, Config{Workers: 2, Cache: c, FleetWait: 300 * time.Millisecond})
	_, st := postJob(t, ts, req)
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("fallback job: %s (%s)", fin.State, fin.Error)
	}
	if fin.Stats.FleetSource != "" {
		t.Fatalf("FleetSource = %q, want local build", fin.Stats.FleetSource)
	}
	if s.fleetFallbacks.Load() != 1 {
		t.Fatalf("fleetFallbacks = %d, want 1", s.fleetFallbacks.Load())
	}
	if want := directImage(t, req); !bytes.Equal(fetchImage(t, ts, st.ID), want) {
		t.Fatal("fallback image differs from direct build")
	}
}

// TestFleetDeterminismDifferential is the acceptance bar: the same job
// set produces byte-identical images with no remote tier, a healthy
// remote tier, and a remote tier cycling through every fault mode
// mid-run. The flaky daemon may win, lose, miss, or fall back on any
// given job — whatever path it takes, the bytes must match.
func TestFleetDeterminismDifferential(t *testing.T) {
	reqs := []JobRequest{
		{App: "Toutiao", Scale: 0.05, Config: "ltbo"},
		{App: "Taobao", Scale: 0.05, Config: "plopti"},
		{App: "Toutiao", Scale: 0.05, Config: "ltbo"}, // repeat: warm path
		{App: "Fanqie", Scale: 0.05, Config: "cto", Rounds: 2},
	}
	want := make([][]byte, len(reqs))
	for i, req := range reqs {
		want[i] = directImage(t, req)
	}

	run := func(t *testing.T, ts *httptest.Server, perJob func(i int)) {
		t.Helper()
		for i, req := range reqs {
			if perJob != nil {
				perJob(i)
			}
			_, st := postJob(t, ts, req)
			fin := waitTerminal(t, ts, st.ID)
			if fin.State != StateDone {
				t.Fatalf("job %d: %s (%s)", i, fin.State, fin.Error)
			}
			if got := fetchImage(t, ts, st.ID); !bytes.Equal(got, want[i]) {
				t.Fatalf("job %d (%s/%s): image differs from direct build", i, req.App, req.Config)
			}
		}
	}

	t.Run("remote-off", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 2, Cache: cache.New()})
		run(t, ts, nil)
	})
	t.Run("remote-on", func(t *testing.T) {
		flaky := cachetest.NewFlaky(0)
		c := cache.New()
		c.SetRemote(fleetRemote(t, flaky))
		_, ts := newTestServer(t, Config{Workers: 2, Cache: c})
		run(t, ts, nil)
	})
	t.Run("remote-flaky", func(t *testing.T) {
		flaky := cachetest.NewFlaky(0)
		flaky.SetDelay(1500 * time.Millisecond)
		c := cache.New()
		c.SetRemote(fleetRemote(t, flaky))
		_, ts := newTestServer(t, Config{Workers: 2, Cache: c, FleetWait: time.Second})
		faults := []cachetest.Fault{
			cachetest.FaultDrop, cachetest.Fault500,
			cachetest.FaultCorrupt, cachetest.FaultSkew,
		}
		run(t, ts, func(i int) {
			flaky.SetFault(faults[i%len(faults)])
		})
	})
}

// TestFleetPromExposition checks the remote-tier counter families appear
// in the exposition when (and only when) a remote tier is configured.
func TestFleetPromExposition(t *testing.T) {
	flaky := cachetest.NewFlaky(0)
	c := cache.New()
	c.SetRemote(fleetRemote(t, flaky))
	_, ts := newTestServer(t, Config{Workers: 1, Cache: c})
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	doc := buf.String()
	for _, fam := range []string{
		"calibrod_fleet_jobs_total", "calibrod_fleet_wins_total",
		"calibrod_fleet_fallbacks_total",
		"calibrod_cache_remote_hits_total", "calibrod_cache_remote_misses_total",
		"calibrod_cache_remote_errors_total", "calibrod_cache_remote_puts_total",
		"calibrod_cache_remote_breaker_opens_total",
	} {
		if !strings.Contains(doc, "# TYPE "+fam+" counter") {
			t.Errorf("exposition missing family %s", fam)
		}
	}

	// And absent without a remote.
	_, ts2 := newTestServer(t, Config{Workers: 1, Cache: cache.New()})
	resp2, err := http.Get(ts2.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf2 := new(bytes.Buffer)
	buf2.ReadFrom(resp2.Body)
	if strings.Contains(buf2.String(), "calibrod_fleet_jobs_total") {
		t.Error("fleet families exposed without a remote tier")
	}
}
