// HTTP surface: submit/poll/fetch endpoints plus the health and metrics
// probes. The API is deliberately plain JSON over five routes —
//
//	POST   /jobs             submit a JobRequest  -> 202 JobStatus
//	                         (kind "build" compiles an app; kind "debloat"
//	                         rewrites an existing oat payload, removing
//	                         code unreachable from the requested roots)
//	GET    /jobs/{id}        poll (``?wait=5s`` long-polls until terminal)
//	DELETE /jobs/{id}        cancel
//	GET    /jobs/{id}/image  fetch the linked OAT image bytes
//	GET    /jobs/{id}/stats  fetch the Table-6-style JobStats
//	GET    /jobs/{id}/lint   fetch the lint findings (when requested)
//	GET    /jobs/{id}/trace  fetch the job's lifecycle trace (Chrome JSON)
//	GET    /healthz          liveness + drain state
//	GET    /metrics          Metrics JSON (?format=prom for Prometheus text)
//
// Backpressure is visible at the edge: a full queue answers 429 with a
// Retry-After hint, a draining server answers 503, an oversized body 413.

package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Handler returns the daemon's HTTP handler. When Config.Log is set,
// every request additionally emits one http_access event after its
// response is written.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/image", s.handleImage)
	mux.HandleFunc("GET /jobs/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /jobs/{id}/lint", s.handleLint)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Log == nil {
		return mux
	}
	return s.accessLog(mux)
}

// statusWriter remembers the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLog wraps the mux with one JSON access line per request. It runs
// after the response is committed and reads nothing the handler didn't
// already compute — logging observes, it never steers.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.cfg.Log.Log("http_access", map[string]any{
			"method": r.Method, "path": r.URL.Path, "status": sw.status,
			"dur_us": time.Since(start).Microseconds(),
		})
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the response is already committed
}

// apiError is the error body every non-2xx JSON response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		s.invalid.Add(1)
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over limit: "+err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := s.submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// The Retry-After hint is the queue's drain horizon, crudely: one
		// second is the right order of magnitude for per-job build times
		// at reproduction scale.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		s.invalid.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// jobFromPath resolves the {id} path segment, answering the 404 itself.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	if wq := r.URL.Query().Get("wait"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait duration: "+err.Error())
			return
		}
		// Long poll: return early on terminal state, at the cap, or when
		// the client goes away — whichever comes first.
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.doneCh:
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

// requireDone gates the fetch endpoints: 409 until the job is done, with
// the job's own error in the body when it terminally failed.
func requireDone(w http.ResponseWriter, j *job) bool {
	j.mu.Lock()
	state, errMsg := j.state, j.errMsg
	j.mu.Unlock()
	if state == StateDone {
		return true
	}
	msg := "job is " + state
	if errMsg != "" {
		msg += ": " + errMsg
	}
	writeError(w, http.StatusConflict, msg)
	return false
}

func (s *Server) handleImage(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok || !requireDone(w, j) {
		return
	}
	j.mu.Lock()
	image := j.image
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(image) //nolint:errcheck // client disconnects are not server errors
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok || !requireDone(w, j) {
		return
	}
	j.mu.Lock()
	stats := j.stats
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok || !requireDone(w, j) {
		return
	}
	j.mu.Lock()
	lint := j.lint
	requested := j.req.Lint
	j.mu.Unlock()
	if !requested {
		writeError(w, http.StatusConflict, "job was submitted without lint: true")
		return
	}
	out := make([]FindingJSON, 0, len(lint))
	for _, f := range lint {
		out = append(out, FindingJSON{
			Severity: f.Severity.String(),
			Method:   int(f.Method),
			Off:      f.Off,
			Rule:     f.Rule,
			Msg:      f.Msg,
			Text:     f.String(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// Health is the /healthz body.
type Health struct {
	Status string `json:"status"` // "ok" or "draining"
	Jobs   int    `json:"jobs"`   // jobs known to the registry
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok"}
	if s.Draining() {
		h.Status = "draining"
	}
	s.mu.Lock()
	h.Jobs = len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// handleTrace serves the job's lifecycle span tree as Chrome trace-event
// JSON — the same format the build-level -trace flag emits, so one
// viewer (Perfetto, chrome://tracing) opens both.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	spans, lanes := j.traceRecords()
	w.Header().Set("Content-Type", "application/json")
	obs.WriteTraceRecords(w, spans, lanes) //nolint:errcheck // response committed
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, s.Metrics())
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WritePrometheus(w) //nolint:errcheck // response committed
	default:
		writeError(w, http.StatusBadRequest, "unknown metrics format "+format)
	}
}
