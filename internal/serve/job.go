// Job model: the request/status/stats wire types and the build execution
// one worker performs per job. The request mirrors cmd/calibro's knobs —
// an app profile name or a serialized dex payload, the evaluation-ladder
// configuration, and the tuning flags — so anything buildable one-shot is
// buildable as a service.

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/workload"
)

// Job states. A job is terminal in done, failed, or canceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"   // build error or deadline expiry
	StateCanceled = "canceled" // client cancellation
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobRequest is the submit payload. Exactly one of App (a benchmark
// profile name, generated server-side) or Dex (a serialized dex container
// or smali-like text, base64 in JSON) selects the input.
type JobRequest struct {
	App   string  `json:"app,omitempty"`   // profile name (Toutiao .. Wechat)
	Scale float64 `json:"scale,omitempty"` // profile scale; server default when 0
	Dex   []byte  `json:"dex,omitempty"`   // dex container bytes or assembly text

	Config string `json:"config,omitempty"` // baseline|cto|ltbo|plopti|hfopti (default plopti)
	Trees  int    `json:"trees,omitempty"`  // parallel suffix trees (default 8)
	Rounds int    `json:"rounds,omitempty"` // outlining rounds
	Dedup  bool   `json:"dedup,omitempty"`  // merge identical outlined functions

	Workers int  `json:"workers,omitempty"` // per-build pool width; server default when 0
	Runs    int  `json:"runs,omitempty"`    // hfopti profiling script runs (default 20)
	Verify  bool `json:"verify,omitempty"`  // fail the build on lint findings
	Lint    bool `json:"lint,omitempty"`    // lint the image and attach findings

	// TimeoutMS is the job deadline in milliseconds, measured from
	// submission; 0 inherits the server maximum, larger values are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r JobRequest) withDefaults(scale float64) JobRequest {
	if r.Config == "" {
		r.Config = "plopti"
	}
	if r.Scale == 0 {
		r.Scale = scale
	}
	if r.Trees == 0 {
		r.Trees = 8
	}
	if r.Runs == 0 {
		r.Runs = 20
	}
	return r
}

// validate rejects a request before it takes a queue slot.
func (r JobRequest) validate() error {
	switch r.Config {
	case "baseline", "cto", "ltbo", "plopti", "hfopti":
	default:
		return fmt.Errorf("unknown config %q", r.Config)
	}
	switch {
	case r.App != "" && len(r.Dex) > 0:
		return errors.New("app and dex are mutually exclusive")
	case r.App == "" && len(r.Dex) == 0:
		return errors.New("one of app or dex is required")
	case r.App != "":
		if _, ok := workload.AppByName(r.App, r.Scale); !ok {
			return fmt.Errorf("unknown app %q", r.App)
		}
	}
	return nil
}

// JobStats is the Table-6-style per-job report: sizes, stage wall clocks,
// outlining effect, and what serving added on top (queue wait).
type JobStats struct {
	App        string `json:"app"`
	Config     string `json:"config"`
	Methods    int    `json:"methods"`
	TextBytes  int    `json:"text_bytes"`
	ImageBytes int    `json:"image_bytes"`
	Workers    int    `json:"workers"`

	QueueWaitUS int64 `json:"queue_wait_us"`
	CompileUS   int64 `json:"compile_us"`
	OutlineUS   int64 `json:"outline_us"`
	LinkUS      int64 `json:"link_us"`
	VerifyUS    int64 `json:"verify_us"`
	WallUS      int64 `json:"wall_us"`

	OutlinedFunctions   int `json:"outlined_functions,omitempty"`
	OutlinedOccurrences int `json:"outlined_occurrences,omitempty"`
	NetWordsSaved       int `json:"net_words_saved,omitempty"`

	// LintFindings counts warnings and errors when the request asked for
	// lint; -1 means lint was not requested.
	LintFindings int `json:"lint_findings"`
}

// JobStatus is the poll response.
type JobStatus struct {
	ID          string    `json:"id"`
	State       string    `json:"state"`
	Error       string    `json:"error,omitempty"`
	QueueWaitUS int64     `json:"queue_wait_us,omitempty"`
	Stats       *JobStats `json:"stats,omitempty"` // terminal done only
}

// FindingJSON is one lint finding on the wire, with the severity rendered
// as its stable name and the full human-readable line alongside the
// structured fields.
type FindingJSON struct {
	Severity string `json:"severity"`
	Method   int    `json:"method"`
	Off      int    `json:"off"`
	Rule     string `json:"rule"`
	Msg      string `json:"msg"`
	Text     string `json:"text"`
}

// job is the server-side record of one submission.
type job struct {
	id  string
	req JobRequest

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	errMsg    string
	submitted time.Time
	finished  time.Time
	queueWait time.Duration
	image     []byte
	stats     *JobStats
	lint      []analysis.Finding
	doneCh    chan struct{} // closed on terminal transition
}

// status snapshots the job for the poll endpoint.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		QueueWaitUS: j.queueWait.Microseconds(),
	}
	if j.state == StateDone {
		st.Stats = j.stats
	}
	return st
}

// buildOutput is what a successful build hands the job record.
type buildOutput struct {
	image []byte
	stats *JobStats
	lint  []analysis.Finding
}

// loadApp materializes the job's input: a generated benchmark profile, or
// the client's dex payload (binary container or assembly text, sniffed by
// magic, with cmd/calibro's leading-methods-are-drivers convention).
func loadApp(req JobRequest) (*dex.App, *workload.Manifest, error) {
	if req.App != "" {
		prof, ok := workload.AppByName(req.App, req.Scale)
		if !ok {
			return nil, nil, fmt.Errorf("unknown app %q", req.App)
		}
		return workload.Generate(prof)
	}
	var app *dex.App
	var err error
	if len(req.Dex) >= 4 && string(req.Dex[:4]) == "dex\n" {
		app, err = dex.UnmarshalApp(req.Dex)
	} else {
		app, err = dex.ParseText(string(req.Dex))
	}
	if err != nil {
		return nil, nil, err
	}
	n := 3
	if app.NumMethods() < n {
		n = app.NumMethods()
	}
	man := &workload.Manifest{}
	for i := 0; i < n; i++ {
		man.Drivers = append(man.Drivers, dex.MethodID(i))
	}
	return app, man, nil
}

// ladder maps the request's configuration name onto the evaluation
// ladder. hfopti is handled by the caller (it needs the profiling loop).
func ladder(req JobRequest) core.Config {
	switch req.Config {
	case "baseline":
		return core.Baseline()
	case "cto":
		return core.CTOOnly()
	case "ltbo":
		return core.CTOLTBO()
	default: // plopti, hfopti
		return core.CTOLTBOPl(req.Trees)
	}
}

// build runs one job under its context. Every job shares the server's
// cache and tracer; everything else is per-job.
func (s *Server) build(ctx context.Context, req JobRequest, queueWait time.Duration) (*buildOutput, error) {
	app, man, err := loadApp(req)
	if err != nil {
		return nil, err
	}
	cfg := ladder(req)
	cfg.Rounds = req.Rounds
	cfg.DedupFunctions = req.Dedup
	cfg.VerifyImage = req.Verify
	cfg.Workers = req.Workers
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.BuildWorkers
	}
	cfg.Cache = s.cfg.Cache
	cfg.Tracer = s.cfg.Tracer

	var res *core.Result
	if req.Config == "hfopti" {
		script := workload.Script(man, req.Runs, 1)
		res, _, err = core.ProfileGuidedBuildCtx(ctx, app, cfg, script)
	} else {
		res, err = core.BuildCtx(ctx, app, cfg)
	}
	if err != nil {
		return nil, err
	}
	data, err := res.Image.Marshal()
	if err != nil {
		return nil, err
	}

	out := &buildOutput{image: data}
	stats := &JobStats{
		App:          app.Name,
		Config:       req.Config,
		Methods:      app.NumMethods(),
		TextBytes:    res.TextBytes(),
		ImageBytes:   len(data),
		Workers:      res.Workers,
		QueueWaitUS:  queueWait.Microseconds(),
		CompileUS:    res.CompileTime.Microseconds(),
		OutlineUS:    res.OutlineTime.Microseconds(),
		LinkUS:       res.LinkTime.Microseconds(),
		VerifyUS:     res.VerifyTime.Microseconds(),
		WallUS:       res.WallTime.Microseconds(),
		LintFindings: -1,
	}
	if o := res.Outline; o != nil {
		stats.OutlinedFunctions = o.OutlinedFunctions
		stats.OutlinedOccurrences = o.OutlinedOccurrences
		stats.NetWordsSaved = o.NetWordsSaved()
	}
	if req.Lint {
		findings, err := analysis.LintCtx(ctx, res.Image, cfg.Workers, s.cfg.Tracer)
		if err != nil {
			return nil, err
		}
		out.lint = findings
		stats.LintFindings = len(findings)
	}
	out.stats = stats
	return out, nil
}
