// Job model: the request/status/stats wire types and the build execution
// one worker performs per job. The request mirrors cmd/calibro's knobs —
// an app profile name or a serialized dex payload, the evaluation-ladder
// configuration, and the tuning flags — so anything buildable one-shot is
// buildable as a service.

package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Job states. A job is terminal in done, failed, or canceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"   // build error or deadline expiry
	StateCanceled = "canceled" // client cancellation
)

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobRequest is the submit payload. For a build job (the default kind),
// exactly one of App (a benchmark profile name, generated server-side) or
// Dex (a serialized dex container or smali-like text, base64 in JSON)
// selects the input. For a debloat job, Oat carries the linked image to
// rewrite and Roots the reachability entry points. For a reoutline job,
// Oat carries the image to re-outline post hoc.
type JobRequest struct {
	// Kind selects the job: "build" (default) compiles an app, "debloat"
	// rewrites an existing image removing unreachable code, "reoutline"
	// re-outlines an existing image without its compile-time state.
	Kind string `json:"kind,omitempty"`

	App   string  `json:"app,omitempty"`   // profile name (Toutiao .. Wechat)
	Scale float64 `json:"scale,omitempty"` // profile scale; server default when 0
	Dex   []byte  `json:"dex,omitempty"`   // dex container bytes or assembly text

	// Version and Delta model app updates against a named profile:
	// version V regenerates Delta of the app's methods (deterministically
	// per version), leaving the rest byte-identical — so a warm cache hits
	// on the unchanged majority. Delta defaults to 0.10 when Version > 0.
	Version int     `json:"version,omitempty"`
	Delta   float64 `json:"delta,omitempty"`

	// Oat is the serialized OAT image a debloat job rewrites (base64 in
	// JSON). Roots lists the method IDs reachability starts from; empty
	// selects the conservative no-caller inference.
	Oat   []byte   `json:"oat,omitempty"`
	Roots []uint32 `json:"roots,omitempty"`

	Config string `json:"config,omitempty"` // baseline|cto|ltbo|plopti|hfopti (default plopti)
	Trees  int    `json:"trees,omitempty"`  // parallel suffix trees (default 8)
	Shards int    `json:"shards,omitempty"` // detection shards per tree; <= 1 exact global
	Rounds int    `json:"rounds,omitempty"` // outlining rounds
	Dedup  bool   `json:"dedup,omitempty"`  // merge identical outlined functions

	Workers int  `json:"workers,omitempty"` // per-build pool width; server default when 0
	Runs    int  `json:"runs,omitempty"`    // hfopti profiling script runs (default 20)
	Verify  bool `json:"verify,omitempty"`  // fail the build on lint findings
	Lint    bool `json:"lint,omitempty"`    // lint the image and attach findings

	// TimeoutMS is the job deadline in milliseconds, measured from
	// submission; 0 inherits the server maximum, larger values are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r JobRequest) withDefaults(scale float64) JobRequest {
	if r.Kind == "" {
		r.Kind = KindBuild
	}
	if r.Config == "" {
		r.Config = "plopti"
	}
	if r.Scale == 0 {
		r.Scale = scale
	}
	// Build jobs default to plopti's 8 parallel trees. Reoutline jobs
	// inherit the reoutline package default (single global tree — what
	// `calibro -reoutline` runs, so daemon and CLI outputs stay
	// byte-identical) unless the client asks for trees explicitly.
	if r.Trees == 0 && r.Kind != KindReoutline {
		r.Trees = 8
	}
	if r.Runs == 0 {
		r.Runs = 20
	}
	if r.Version > 0 && r.Delta == 0 {
		r.Delta = 0.10
	}
	return r
}

// Job kinds.
const (
	KindBuild     = "build"
	KindDebloat   = "debloat"
	KindReoutline = "reoutline"
)

// validate rejects a request before it takes a queue slot.
func (r JobRequest) validate() error {
	switch r.Kind {
	case KindBuild:
	case KindDebloat:
		switch {
		case len(r.Oat) == 0:
			return errors.New("debloat requires an oat image")
		case r.App != "" || len(r.Dex) > 0:
			return errors.New("debloat takes oat, not app or dex")
		}
		return nil
	case KindReoutline:
		switch {
		case len(r.Oat) == 0:
			return errors.New("reoutline requires an oat image")
		case r.App != "" || len(r.Dex) > 0:
			return errors.New("reoutline takes oat, not app or dex")
		case len(r.Roots) > 0:
			return errors.New("roots apply to debloat jobs only")
		}
		return nil
	default:
		return fmt.Errorf("unknown job kind %q", r.Kind)
	}
	if len(r.Oat) > 0 || len(r.Roots) > 0 {
		return errors.New("oat and roots apply to rewrite jobs only")
	}
	switch r.Config {
	case "baseline", "cto", "ltbo", "plopti", "hfopti":
	default:
		return fmt.Errorf("unknown config %q", r.Config)
	}
	switch {
	case r.App != "" && len(r.Dex) > 0:
		return errors.New("app and dex are mutually exclusive")
	case r.App == "" && len(r.Dex) == 0:
		return errors.New("one of app or dex is required")
	case r.App != "":
		if _, ok := workload.AppByName(r.App, r.Scale); !ok {
			return fmt.Errorf("unknown app %q", r.App)
		}
	}
	switch {
	case r.Version < 0:
		return errors.New("version must be >= 0")
	case r.Delta < 0 || r.Delta >= 1:
		return errors.New("delta must be in [0, 1)")
	case (r.Version > 0 || r.Delta > 0) && r.App == "":
		return errors.New("version and delta apply to app profiles only")
	}
	return nil
}

// JobStats is the Table-6-style per-job report: sizes, stage wall clocks,
// outlining effect, and what serving added on top (queue wait).
type JobStats struct {
	Kind       string `json:"kind,omitempty"`
	App        string `json:"app,omitempty"`
	Config     string `json:"config,omitempty"`
	Methods    int    `json:"methods"`
	TextBytes  int    `json:"text_bytes"`
	ImageBytes int    `json:"image_bytes"`
	Workers    int    `json:"workers"`

	// Debloat jobs report what the rewrite removed; build jobs leave
	// these zero.
	TextBytesBefore int  `json:"text_bytes_before,omitempty"`
	MethodsRemoved  int  `json:"methods_removed,omitempty"`
	OutlinedRemoved int  `json:"outlined_removed,omitempty"`
	ThunksRemoved   int  `json:"thunks_removed,omitempty"`
	Imprecise       bool `json:"imprecise,omitempty"`

	// Reoutline jobs report the lift census and what the second outlining
	// pass did to the outlined-function table; other kinds leave these
	// zero. TextBytesBefore is shared with debloat above.
	MethodsLifted    int `json:"methods_lifted,omitempty"`
	MethodsFrozen    int `json:"methods_frozen,omitempty"`
	OutlinedCreated  int `json:"outlined_created,omitempty"`
	OutlinedRetained int `json:"outlined_retained,omitempty"`
	OutlinedMerged   int `json:"outlined_merged,omitempty"`

	QueueWaitUS int64 `json:"queue_wait_us"`
	CompileUS   int64 `json:"compile_us"`
	OutlineUS   int64 `json:"outline_us"`
	LinkUS      int64 `json:"link_us"`
	VerifyUS    int64 `json:"verify_us"`
	WallUS      int64 `json:"wall_us"`

	OutlinedFunctions   int `json:"outlined_functions,omitempty"`
	OutlinedOccurrences int `json:"outlined_occurrences,omitempty"`
	NetWordsSaved       int `json:"net_words_saved,omitempty"`

	// LintFindings counts warnings and errors when the request asked for
	// lint; -1 means lint was not requested.
	LintFindings int `json:"lint_findings"`

	// FleetSource records how the fleet layer satisfied the job:
	// "artifact" (fetched another daemon's finished build from the remote
	// store), "coalesced" (long-polled a concurrent winner's artifact),
	// or empty for a job this daemon built itself. Timing fields of a
	// fleet-served job are zero except QueueWaitUS — the work happened
	// elsewhere.
	FleetSource string `json:"fleet_source,omitempty"`
}

// JobStatus is the poll response.
type JobStatus struct {
	ID          string    `json:"id"`
	State       string    `json:"state"`
	Error       string    `json:"error,omitempty"`
	QueueWaitUS int64     `json:"queue_wait_us,omitempty"`
	Stats       *JobStats `json:"stats,omitempty"` // terminal done only
}

// FindingJSON is one lint finding on the wire, with the severity rendered
// as its stable name and the full human-readable line alongside the
// structured fields.
type FindingJSON struct {
	Severity string `json:"severity"`
	Method   int    `json:"method"`
	Off      int    `json:"off"`
	Rule     string `json:"rule"`
	Msg      string `json:"msg"`
	Text     string `json:"text"`
}

// job is the server-side record of one submission.
type job struct {
	id  string
	seq int64 // numeric ID, the trace correlation key
	req JobRequest

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	errMsg    string
	submitted time.Time
	dequeued  time.Time // zero until a worker picks the job up
	finished  time.Time
	queueWait time.Duration
	image     []byte
	stats     *JobStats
	lint      []analysis.Finding
	doneCh    chan struct{} // closed on terminal transition
}

// status snapshots the job for the poll endpoint.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:          j.id,
		State:       j.state,
		Error:       j.errMsg,
		QueueWaitUS: j.queueWait.Microseconds(),
	}
	if j.state == StateDone {
		st.Stats = j.stats
	}
	return st
}

// traceRecords synthesizes the job's lifecycle span tree for the
// /jobs/{id}/trace endpoint from the bounded timestamps the job record
// already holds (submitted/dequeued/finished) — nothing per-span is
// stored, so a long-lived daemon's memory does not grow with trace
// detail. The tree is: a root span covering the job's whole life, a
// "queued" child, a "build" child once a worker picked the job up, and
// an instant event at the terminal transition named by outcome. Times
// are relative to submission; an unfinished job's open spans end "now".
func (j *job) traceRecords() ([]obs.SpanRecord, map[int]string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	rel := func(t time.Time) time.Duration {
		d := t.Sub(j.submitted)
		if d < 0 {
			return 0
		}
		return d
	}
	args := map[string]int64{"job": j.seq, "queue_wait_us": j.queueWait.Microseconds()}
	spans := []obs.SpanRecord{
		{Name: "job " + j.id, Cat: "job", Lane: 0, Start: 0, Dur: rel(end), Args: args},
	}
	qEnd := j.dequeued
	if qEnd.IsZero() {
		qEnd = end // still queued (or canceled before pickup)
	}
	spans = append(spans, obs.SpanRecord{
		Name: "queued", Cat: "job", Lane: 0, Start: 0, Dur: rel(qEnd),
	})
	if !j.dequeued.IsZero() {
		spans = append(spans, obs.SpanRecord{
			Name: "build", Cat: "job", Lane: 0, Start: rel(j.dequeued),
			Dur: rel(end) - rel(j.dequeued),
		})
	}
	if !j.finished.IsZero() {
		spans = append(spans, obs.SpanRecord{
			Name: j.state, Cat: "job", Lane: 0, Start: rel(j.finished), Inst: true,
		})
	}
	return spans, map[int]string{0: "job " + j.id}
}

// buildOutput is what a successful build hands the job record.
type buildOutput struct {
	image []byte
	stats *JobStats
	lint  []analysis.Finding
}

// loadApp materializes the job's input: a generated benchmark profile, or
// the client's dex payload (binary container or assembly text, sniffed by
// magic, with cmd/calibro's leading-methods-are-drivers convention).
func loadApp(req JobRequest) (*dex.App, *workload.Manifest, error) {
	if req.App != "" {
		prof, ok := workload.AppByName(req.App, req.Scale)
		if !ok {
			return nil, nil, fmt.Errorf("unknown app %q", req.App)
		}
		if req.Version > 0 || req.Delta > 0 {
			prof = workload.Update(prof, req.Version, req.Delta)
		}
		return workload.Generate(prof)
	}
	var app *dex.App
	var err error
	if len(req.Dex) >= 4 && string(req.Dex[:4]) == "dex\n" {
		app, err = dex.UnmarshalApp(req.Dex)
	} else {
		app, err = dex.ParseText(string(req.Dex))
	}
	if err != nil {
		return nil, nil, err
	}
	n := 3
	if app.NumMethods() < n {
		n = app.NumMethods()
	}
	man := &workload.Manifest{}
	for i := 0; i < n; i++ {
		man.Drivers = append(man.Drivers, dex.MethodID(i))
	}
	return app, man, nil
}

// ladder maps the request's configuration name onto the evaluation
// ladder. hfopti is handled by the caller (it needs the profiling loop).
func ladder(req JobRequest) core.Config {
	switch req.Config {
	case "baseline":
		return core.Baseline()
	case "cto":
		return core.CTOOnly()
	case "ltbo":
		return core.CTOLTBO()
	default: // plopti, hfopti
		return core.CTOLTBOPl(req.Trees)
	}
}

// buildLocal runs one job under its context on this daemon's own
// workers. Every job shares the server's cache and tracer; everything
// else is per-job. The fleet layer (fleet.go) wraps this with the
// artifact fetch and cross-daemon single-flight.
func (s *Server) buildLocal(ctx context.Context, req JobRequest, queueWait time.Duration) (*buildOutput, error) {
	if req.Kind == KindDebloat {
		return s.debloat(ctx, req, queueWait)
	}
	if req.Kind == KindReoutline {
		return s.reoutline(ctx, req, queueWait)
	}
	app, man, err := loadApp(req)
	if err != nil {
		return nil, err
	}
	cfg := ladder(req)
	cfg.DetectShards = req.Shards
	cfg.Rounds = req.Rounds
	cfg.DedupFunctions = req.Dedup
	cfg.VerifyImage = req.Verify
	cfg.Workers = req.Workers
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.BuildWorkers
	}
	cfg.Cache = s.cfg.Cache
	cfg.Tracer = s.cfg.Tracer

	var res *core.Result
	if req.Config == "hfopti" {
		script := workload.Script(man, req.Runs, 1)
		res, _, err = core.ProfileGuidedBuildCtx(ctx, app, cfg, script)
	} else {
		res, err = core.BuildCtx(ctx, app, cfg)
	}
	if err != nil {
		return nil, err
	}
	data, err := res.Image.Marshal()
	if err != nil {
		return nil, err
	}

	out := &buildOutput{image: data}
	stats := &JobStats{
		Kind:         KindBuild,
		App:          app.Name,
		Config:       req.Config,
		Methods:      app.NumMethods(),
		TextBytes:    res.TextBytes(),
		ImageBytes:   len(data),
		Workers:      res.Workers,
		QueueWaitUS:  queueWait.Microseconds(),
		CompileUS:    res.CompileTime.Microseconds(),
		OutlineUS:    res.OutlineTime.Microseconds(),
		LinkUS:       res.LinkTime.Microseconds(),
		VerifyUS:     res.VerifyTime.Microseconds(),
		WallUS:       res.WallTime.Microseconds(),
		LintFindings: -1,
	}
	if o := res.Outline; o != nil {
		stats.OutlinedFunctions = o.OutlinedFunctions
		stats.OutlinedOccurrences = o.OutlinedOccurrences
		stats.NetWordsSaved = o.NetWordsSaved()
	}
	if req.Lint {
		findings, err := analysis.LintCtx(ctx, res.Image, cfg.Workers, s.cfg.Tracer)
		if err != nil {
			return nil, err
		}
		out.lint = findings
		stats.LintFindings = len(findings)
	}
	out.stats = stats
	return out, nil
}

// debloat runs a debloat-kind job: parse the client's image, remove
// everything unreachable from the requested roots, and hand back the
// smaller image with removal statistics. The pass itself re-verifies the
// output with the full lint before returning it.
func (s *Server) debloat(ctx context.Context, req JobRequest, queueWait time.Duration) (*buildOutput, error) {
	img, err := oat.Unmarshal(req.Oat)
	if err != nil {
		return nil, fmt.Errorf("parsing oat image: %w", err)
	}
	cfg := core.DebloatConfig{Workers: req.Workers, Tracer: s.cfg.Tracer}
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.BuildWorkers
	}
	for _, id := range req.Roots {
		cfg.Roots = append(cfg.Roots, dex.MethodID(id))
	}
	if len(cfg.Roots) == 0 {
		cfg.NoCallerRoots = true
	}
	start := time.Now()
	res, dstats, err := core.DebloatImageCtx(ctx, img, cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	data, err := res.Marshal()
	if err != nil {
		return nil, err
	}
	out := &buildOutput{image: data}
	stats := &JobStats{
		Kind:            KindDebloat,
		Methods:         dstats.MethodsTotal,
		TextBytes:       dstats.TextAfter,
		TextBytesBefore: dstats.TextBefore,
		ImageBytes:      len(data),
		Workers:         cfg.Workers,
		MethodsRemoved:  dstats.MethodsRemoved,
		OutlinedRemoved: dstats.BlobsRemoved,
		ThunksRemoved:   dstats.ThunksRemoved,
		Imprecise:       dstats.Imprecise,
		QueueWaitUS:     queueWait.Microseconds(),
		WallUS:          wall.Microseconds(),
		LintFindings:    -1,
	}
	if req.Lint {
		findings, err := analysis.LintCtx(ctx, res, cfg.Workers, s.cfg.Tracer)
		if err != nil {
			return nil, err
		}
		out.lint = findings
		stats.LintFindings = len(findings)
	}
	out.stats = stats
	return out, nil
}

// reoutline runs a reoutline-kind job: parse the client's image, lift it
// back into rewritable form, re-run outlining over it, and hand back the
// smaller image. The pass re-verifies its own output (validation plus the
// paired equivalence rules) before returning it.
func (s *Server) reoutline(ctx context.Context, req JobRequest, queueWait time.Duration) (*buildOutput, error) {
	img, err := oat.Unmarshal(req.Oat)
	if err != nil {
		return nil, fmt.Errorf("parsing oat image: %w", err)
	}
	cfg := core.ReoutlineConfig{Workers: req.Workers, Tracer: s.cfg.Tracer}
	if cfg.Workers == 0 {
		cfg.Workers = s.cfg.BuildWorkers
	}
	cfg.ParallelTrees = req.Trees
	cfg.DetectShards = req.Shards
	cfg.Rounds = req.Rounds
	cfg.DedupFunctions = req.Dedup
	start := time.Now()
	res, rstats, err := core.ReoutlineImageCtx(ctx, img, cfg)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	data, err := res.Marshal()
	if err != nil {
		return nil, err
	}
	out := &buildOutput{image: data}
	stats := &JobStats{
		Kind:             KindReoutline,
		Methods:          rstats.MethodsTotal,
		TextBytes:        rstats.TextAfter,
		TextBytesBefore:  rstats.TextBefore,
		ImageBytes:       len(data),
		Workers:          cfg.Workers,
		MethodsLifted:    rstats.MethodsLifted,
		MethodsFrozen:    rstats.MethodsFrozen,
		OutlinedCreated:  rstats.BlobsCreated,
		OutlinedRetained: rstats.BlobsRetained,
		OutlinedMerged:   rstats.BlobsDeduped,
		QueueWaitUS:      queueWait.Microseconds(),
		OutlineUS:        rstats.DetectTime.Microseconds(),
		LinkUS:           rstats.RelinkTime.Microseconds(),
		VerifyUS:         rstats.VerifyTime.Microseconds(),
		WallUS:           wall.Microseconds(),
		LintFindings:     -1,
	}
	if o := rstats.Outline; o != nil {
		stats.OutlinedFunctions = o.OutlinedFunctions
		stats.OutlinedOccurrences = o.OutlinedOccurrences
		stats.NetWordsSaved = o.NetWordsSaved()
	}
	if req.Lint {
		findings, err := analysis.LintCtx(ctx, res, cfg.Workers, s.cfg.Tracer)
		if err != nil {
			return nil, err
		}
		out.lint = findings
		stats.LintFindings = len(findings)
	}
	out.stats = stats
	return out, nil
}
