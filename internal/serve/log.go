// Structured job and access logging. The daemon's log is JSON lines —
// one object per event, machine-splittable, with a stable "event" field
// naming the shape — because a fleet scheduler tails logs with a parser,
// not with eyes. Logging is off by default and strictly observational:
// the logger runs after state transitions commit, touches only its own
// writer under its own mutex, and feeds nothing back into admission,
// scheduling, or build output. TestLoggingDeterminism pins that a build
// with logging on is byte-identical to one without.

package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventLogger writes JSON-lines events. Safe for concurrent use; a nil
// *EventLogger discards everything, so call sites need no "is logging
// on" branch.
type EventLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewEventLogger returns a logger targeting w.
func NewEventLogger(w io.Writer) *EventLogger {
	return &EventLogger{w: w}
}

// Log writes one event line: {"ts": ..., "event": event, ...fields}.
// Field keys are sorted by the JSON encoder, so lines are deterministic
// for deterministic fields. Write errors are swallowed — a full log disk
// must not fail builds.
func (l *EventLogger) Log(event string, fields map[string]any) {
	if l == nil {
		return
	}
	if fields == nil {
		fields = map[string]any{}
	}
	fields["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	fields["event"] = event
	line, err := json.Marshal(fields)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	l.w.Write(line) //nolint:errcheck // logging must never fail the serving path
	l.mu.Unlock()
}
