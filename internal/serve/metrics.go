// Metrics: the /metrics payload. One snapshot combines the server's own
// serving counters (queue depth, job totals, queue-wait percentiles),
// the shared cache's accounting, and the shared tracer's full telemetry
// reduction — everything a dashboard needs to see whether the daemon is
// keeping up and whether the cache is earning its memory.

package serve

import (
	"repro/internal/cache"
	"repro/internal/obs"
)

// Metrics is the /metrics response body.
type Metrics struct {
	// Queue occupancy right now, against its capacity.
	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Draining   bool `json:"draining"`

	// Job totals since the process started. accepted = done + failed +
	// canceled + (queued + running); rejected counts 429s and overlaps
	// nothing.
	JobsRunning  int64 `json:"jobs_running"`
	JobsAccepted int64 `json:"jobs_accepted"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsCanceled int64 `json:"jobs_canceled"`
	JobsRejected int64 `json:"jobs_rejected"`
	JobsInvalid  int64 `json:"jobs_invalid"`

	// QueueWait is the distribution of time dequeued jobs spent waiting
	// for a worker; JobDuration the end-to-end submit-to-terminal latency
	// (p50/p95/p99/max, µs). Both come from bounded histograms, so their
	// memory does not grow with job count.
	QueueWait   obs.TaskStats `json:"queue_wait"`
	JobDuration obs.TaskStats `json:"job_duration"`

	// Fleet outcomes; all zero without a remote tier. FleetHits are jobs
	// served whole from a published artifact, FleetWins builds this
	// daemon won and published, FleetCoalesced jobs that long-polled a
	// peer's build, FleetFallbacks losers that gave up waiting and built
	// locally.
	FleetHits      int64 `json:"fleet_hits"`
	FleetWins      int64 `json:"fleet_wins"`
	FleetCoalesced int64 `json:"fleet_coalesced"`
	FleetFallbacks int64 `json:"fleet_fallbacks"`

	// Cache is the shared cache's accounting and its derived hit rate;
	// absent when the daemon runs uncached.
	Cache        *cache.Stats `json:"cache,omitempty"`
	CacheHitRate float64      `json:"cache_hit_rate"`

	// Remote is the fleet tier's client-side accounting (every failure
	// class counted separately); absent without a remote tier.
	Remote *cache.RemoteStats `json:"remote,omitempty"`

	// Telemetry is the shared tracer's full snapshot (stage totals, task
	// distributions, worker occupancy); absent when tracing is off.
	Telemetry *obs.Snapshot `json:"telemetry,omitempty"`
}

// Metrics snapshots the server.
func (s *Server) Metrics() *Metrics {
	m := &Metrics{
		QueueDepth:   len(s.queue),
		QueueCap:     s.cfg.QueueDepth,
		Draining:     s.Draining(),
		JobsRunning:  s.running.Load(),
		JobsAccepted: s.accepted.Load(),
		JobsDone:     s.done.Load(),
		JobsFailed:   s.failed.Load(),
		JobsCanceled: s.canceled.Load(),
		JobsRejected: s.rejected.Load(),
		JobsInvalid:  s.invalid.Load(),

		FleetHits:      s.fleetHits.Load(),
		FleetWins:      s.fleetWins.Load(),
		FleetCoalesced: s.fleetCoalesced.Load(),
		FleetFallbacks: s.fleetFallbacks.Load(),
	}
	m.QueueWait = s.queueWait.Stats()
	m.JobDuration = s.jobDur.Stats()
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		m.Cache = &st
		m.CacheHitRate = st.HitRate()
	}
	if r := s.remote(); r != nil {
		rst := r.Stats()
		m.Remote = &rst
	}
	if s.cfg.Tracer != nil {
		m.Telemetry = s.cfg.Tracer.Snapshot()
	}
	return m
}
