// The observability contract: per-job traces are fetchable and
// well-formed, the Prometheus exposition parses cleanly with no
// duplicate families, logging changes no output byte, terminal jobs age
// out of the registry, and oversized submits bounce with 413 before they
// occupy memory.

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// TestJobTraceEndpoint: a finished job's trace is valid Chrome
// trace-event JSON containing the lifecycle spans, and an unknown job
// answers 404.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Scale: 0.05, Tracer: obs.New()})
	resp, st := postJob(t, ts, JobRequest{App: "Taobao", Config: "ltbo"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	if got := waitTerminal(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("job state %s: %s", got.State, got.Error)
	}

	tresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", tresp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative time: ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
	}
	for _, want := range []string{"job " + st.ID, "queued", "build", StateDone} {
		if !names[want] {
			t.Errorf("trace missing %q event; have %v", want, names)
		}
	}

	if resp, err := http.Get(ts.URL + "/jobs/nope/trace"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

// TestPromExposition is the golden-shape test: after real traffic the
// exposition parses line by line, every family is declared exactly once,
// samples belong to declared families, and the serving counters carry
// the values /metrics reports as JSON.
func TestPromExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Scale:  0.05,
		Cache:  cache.New(),
		Tracer: obs.New(),
	})
	resp, st := postJob(t, ts, JobRequest{App: "Taobao", Config: "ltbo"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	waitTerminal(t, ts, st.ID)

	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	types := map[string]string{} // family -> type
	for ln, line := range strings.Split(out, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			if _, dup := types[f[2]]; dup {
				t.Errorf("duplicate family %s", f[2])
			}
			types[f[2]] = f[3]
		default:
			// A sample: name{labels} value — the name must extend a
			// declared family and the value must parse.
			var v float64
			name, err := parsePromSample(line, &v)
			if err != nil {
				t.Fatalf("line %d: %v in %q", ln+1, err, line)
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
				"_bucket"), "_sum"), "_count")
			if _, ok := types[name]; ok {
				continue
			}
			if _, ok := types[base]; !ok {
				t.Errorf("line %d: sample %q outside any declared family", ln+1, name)
			}
		}
	}

	// Cross-check against the JSON metrics: one job accepted and done.
	m := s.Metrics()
	for _, want := range []string{
		"calibrod_jobs_accepted_total 1\n",
		`calibrod_jobs_total{state="done"} 1` + "\n",
		"calibrod_queue_wait_seconds_count 1\n",
		"calibrod_job_duration_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if m.JobsDone != 1 || m.JobDuration.Count != 1 {
		t.Errorf("JSON metrics disagree: done=%d latency count=%d", m.JobsDone, m.JobDuration.Count)
	}
	if !strings.Contains(out, "calibro_stage_seconds_total{stage=") {
		t.Error("exposition missing tracer stage totals")
	}

	// The HTTP route serves the same document with the prom content type,
	// and rejects unknown formats.
	presp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom content type %q", ct)
	}
	bresp, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: status %d, want 400", bresp.StatusCode)
	}
}

// parsePromSample splits one exposition sample line into name and value.
func parsePromSample(line string, v *float64) (string, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", errors.New("no value field")
	}
	f, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return "", err
	}
	*v = f
	name := line[:i]
	if j := strings.IndexByte(name, '{'); j >= 0 {
		name = name[:j]
	}
	return name, nil
}

// TestLoggingDeterminism: the same job with logging on and off produces
// byte-identical images — logging observes, it never steers.
func TestLoggingDeterminism(t *testing.T) {
	req := JobRequest{App: "Fanqie", Scale: 0.05, Config: "plopti", Trees: 4}

	var logged bytes.Buffer
	_, tsOn := newTestServer(t, Config{Scale: 0.05, Log: NewEventLogger(&logged)})
	resp, st := postJob(t, tsOn, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	if got := waitTerminal(t, tsOn, st.ID); got.State != StateDone {
		t.Fatalf("job state %s: %s", got.State, got.Error)
	}
	imgOn := fetchImage(t, tsOn, st.ID)

	_, tsOff := newTestServer(t, Config{Scale: 0.05})
	resp, st = postJob(t, tsOff, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	waitTerminal(t, tsOff, st.ID)
	imgOff := fetchImage(t, tsOff, st.ID)

	if !bytes.Equal(imgOn, imgOff) {
		t.Error("image with logging differs from image without")
	}

	// The log itself is JSON lines with the expected lifecycle events.
	events := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(logged.String()), "\n") {
		var ev struct {
			Event string `json:"event"`
			TS    string `json:"ts"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			t.Errorf("log ts %q does not parse: %v", ev.TS, err)
		}
		events[ev.Event] = true
	}
	for _, want := range []string{"job_accept", "job_start", "job_finish", "http_access"} {
		if !events[want] {
			t.Errorf("log missing %q event; have %v", want, events)
		}
	}
}

// TestRetention: terminal jobs age out FIFO beyond the window and their
// endpoints answer 404, while the newest stay pollable.
func TestRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{Scale: 0.05, Retention: 2, QueueDepth: 32})
	var ids []string
	for i := 0; i < 4; i++ {
		resp, st := postJob(t, ts, JobRequest{App: "Taobao", Config: "baseline"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, st.Error)
		}
		if got := waitTerminal(t, ts, st.ID); got.State != StateDone {
			t.Fatalf("job %d state %s: %s", i, got.State, got.Error)
		}
		ids = append(ids, st.ID)
	}
	for _, old := range ids[:2] {
		resp, err := http.Get(ts.URL + "/jobs/" + old)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted job %s: status %d, want 404", old, resp.StatusCode)
		}
	}
	for _, kept := range ids[2:] {
		resp, err := http.Get(ts.URL + "/jobs/" + kept)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("retained job %s: status %d, want 200", kept, resp.StatusCode)
		}
	}
}

// TestMaxBody413: a submit body over the configured bound answers 413
// and counts as invalid, not as a crash or a 400.
func TestMaxBody413(t *testing.T) {
	s, ts := newTestServer(t, Config{Scale: 0.05, MaxBody: 1024})
	// The body must be well-formed JSON up to the limit, so the size
	// bound — not the syntax check — is what rejects it.
	body, err := json.Marshal(JobRequest{Dex: bytes.Repeat([]byte{0xA5}, 8192)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submit: status %d, want 413", resp.StatusCode)
	}
	if got := s.Metrics().JobsInvalid; got != 1 {
		t.Errorf("JobsInvalid = %d, want 1", got)
	}
}

// TestVersionedBuild: an update submit (version+delta) builds, differs
// from the previous version's image, and matches a direct build of the
// same updated profile — the determinism contract extends to delta mode.
func TestVersionedBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{Scale: 0.05, Cache: cache.New()})
	imageOf := func(version int) []byte {
		t.Helper()
		resp, st := postJob(t, ts, JobRequest{
			App: "Taobao", Config: "ltbo", Version: version, Delta: 0.2,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("v%d submit: status %d: %s", version, resp.StatusCode, st.Error)
		}
		if got := waitTerminal(t, ts, st.ID); got.State != StateDone {
			t.Fatalf("v%d state %s: %s", version, got.State, got.Error)
		}
		return fetchImage(t, ts, st.ID)
	}
	v1, v2 := imageOf(1), imageOf(2)
	if bytes.Equal(v1, v2) {
		t.Error("version 1 and 2 images are identical; delta did nothing")
	}
	direct := directImage(t, JobRequest{
		App: "Taobao", Scale: 0.05, Config: "ltbo", Version: 2, Delta: 0.2,
	})
	if !bytes.Equal(v2, direct) {
		t.Error("daemon image differs from direct build of the updated profile")
	}
}

// TestVersionValidation: malformed update parameters bounce before
// taking a queue slot.
func TestVersionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Scale: 0.05})
	for _, req := range []JobRequest{
		{App: "Taobao", Delta: 1.5},
		{App: "Taobao", Version: -1},
		{Dex: []byte("method m0\n  return v0\n"), Version: 2},
	} {
		resp, _ := postJob(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("req %+v: status %d, want 400", req, resp.StatusCode)
		}
	}
}
