// Prometheus exposition of the daemon's serving state. WritePrometheus
// renders the same facts /metrics serves as JSON — queue occupancy, job
// totals, the bounded latency histograms, cache accounting, and the
// tracer's stage totals — in the text format (0.0.4) a standard scraper
// ingests. Maps are emitted in sorted key order, so two scrapes of an
// idle daemon are byte-identical and the exposition golden test can
// parse a stable document.

package serve

import (
	"io"
	"sort"

	"repro/internal/obs"
)

// WritePrometheus renders the server's metrics in the Prometheus text
// exposition format. It returns the first write or validation error.
func (s *Server) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)

	p.Family("calibrod_queue_depth", "gauge", "Jobs waiting for a build worker right now.")
	p.Sample("", nil, float64(len(s.queue)))
	p.Family("calibrod_queue_capacity", "gauge", "Bound on the job queue; submits beyond it are rejected.")
	p.Sample("", nil, float64(s.cfg.QueueDepth))
	p.Family("calibrod_draining", "gauge", "1 once Drain began, else 0.")
	if s.Draining() {
		p.Sample("", nil, 1)
	} else {
		p.Sample("", nil, 0)
	}
	p.Family("calibrod_jobs_running", "gauge", "Jobs occupying a build worker right now.")
	p.Sample("", nil, float64(s.running.Load()))

	p.Family("calibrod_jobs_accepted_total", "counter", "Submits that entered the queue.")
	p.Sample("", nil, float64(s.accepted.Load()))
	p.Family("calibrod_jobs_total", "counter", "Terminal jobs by state.")
	p.Sample("", []obs.Label{{Key: "state", Value: StateDone}}, float64(s.done.Load()))
	p.Sample("", []obs.Label{{Key: "state", Value: StateFailed}}, float64(s.failed.Load()))
	p.Sample("", []obs.Label{{Key: "state", Value: StateCanceled}}, float64(s.canceled.Load()))
	p.Family("calibrod_jobs_rejected_total", "counter", "Submits refused by queue backpressure (HTTP 429).")
	p.Sample("", nil, float64(s.rejected.Load()))
	p.Family("calibrod_submits_invalid_total", "counter", "Submits refused as unparseable or invalid (HTTP 400/413).")
	p.Sample("", nil, float64(s.invalid.Load()))

	p.Family("calibrod_queue_wait_seconds", "histogram", "Time dequeued jobs spent waiting for a worker.")
	p.Histo(nil, &s.queueWait)
	p.Family("calibrod_job_duration_seconds", "histogram", "End-to-end job latency, submit to terminal state.")
	p.Histo(nil, &s.jobDur)

	if s.remote() != nil {
		p.Family("calibrod_fleet_jobs_total", "counter", "Jobs satisfied through the fleet layer by source.")
		p.Sample("", []obs.Label{{Key: "source", Value: "artifact"}}, float64(s.fleetHits.Load()))
		p.Sample("", []obs.Label{{Key: "source", Value: "coalesced"}}, float64(s.fleetCoalesced.Load()))
		p.Family("calibrod_fleet_wins_total", "counter", "Single-flight elections won, built, and published.")
		p.Sample("", nil, float64(s.fleetWins.Load()))
		p.Family("calibrod_fleet_fallbacks_total", "counter", "Single-flight losers that gave up waiting and built locally.")
		p.Sample("", nil, float64(s.fleetFallbacks.Load()))

		rst := s.remote().Stats()
		p.Family("calibrod_cache_remote_hits_total", "counter", "Remote-tier fetches that returned a validated frame.")
		p.Sample("", nil, float64(rst.Hits))
		p.Family("calibrod_cache_remote_misses_total", "counter", "Remote-tier fetches that missed cleanly (404).")
		p.Sample("", nil, float64(rst.Misses))
		p.Family("calibrod_cache_remote_errors_total", "counter", "Remote-tier failures by class, all degraded to misses.")
		p.Sample("", []obs.Label{{Key: "class", Value: "transport"}}, float64(rst.Errors))
		p.Sample("", []obs.Label{{Key: "class", Value: "corrupt"}}, float64(rst.Corrupt))
		p.Sample("", []obs.Label{{Key: "class", Value: "skew"}}, float64(rst.Skew))
		p.Family("calibrod_cache_remote_puts_total", "counter", "Entries published to the remote tier.")
		p.Sample("", nil, float64(rst.Puts))
		p.Family("calibrod_cache_remote_put_errors_total", "counter", "Publishes that failed (swallowed).")
		p.Sample("", nil, float64(rst.PutErrors))
		p.Family("calibrod_cache_remote_breaker_opens_total", "counter", "Circuit-breaker closed-to-open transitions.")
		p.Sample("", nil, float64(rst.BreakerOpens))
		p.Family("calibrod_cache_remote_breaker_skips_total", "counter", "Requests swallowed while the breaker was open.")
		p.Sample("", nil, float64(rst.BreakerSkips))
	}

	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		p.Family("calibrod_cache_entries", "gauge", "Live cache entries.")
		p.Sample("", nil, float64(st.Entries))
		p.Family("calibrod_cache_mem_bytes", "gauge", "Bytes held by the in-memory cache tier.")
		p.Sample("", nil, float64(st.MemBytes))
		p.Family("calibrod_cache_hits_total", "counter", "Cache lookups answered without compiling.")
		p.Sample("", nil, float64(st.Hits))
		p.Family("calibrod_cache_misses_total", "counter", "Cache lookups that compiled.")
		p.Sample("", nil, float64(st.Misses))
		p.Family("calibrod_cache_evicted_total", "counter", "Entries evicted by the memory bound.")
		p.Sample("", nil, float64(st.Evicted))
		p.Family("calibrod_cache_hit_ratio", "gauge", "Hits over lookups since start.")
		p.Sample("", nil, st.HitRate())
	}

	if s.cfg.Tracer != nil {
		snap := s.cfg.Tracer.Snapshot()
		p.Family("calibro_stage_seconds_total", "counter", "Cumulative build-stage wall time by stage.")
		for _, k := range sortedKeys(snap.Stages) {
			p.Sample("", []obs.Label{{Key: "stage", Value: k}}, float64(snap.Stages[k])/1e6)
		}
		p.Family("calibro_tasks_total", "counter", "Worker-pool tasks completed by category.")
		for _, k := range sortedKeys(snap.Tasks) {
			p.Sample("", []obs.Label{{Key: "category", Value: k}}, float64(snap.Tasks[k].Count))
		}
		p.Family("calibro_task_seconds_total", "counter", "Cumulative worker-pool task time by category.")
		for _, k := range sortedKeys(snap.Tasks) {
			p.Sample("", []obs.Label{{Key: "category", Value: k}}, float64(snap.Tasks[k].TotalUS)/1e6)
		}
		p.Family("calibro_events_total", "counter", "Tracer counters (outliner statistics, cache events).")
		for _, k := range sortedKeys(snap.Counters) {
			p.Sample("", []obs.Label{{Key: "name", Value: k}}, float64(snap.Counters[k]))
		}
	}
	return p.Err()
}

// sortedKeys returns m's keys ascending, for deterministic exposition.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
