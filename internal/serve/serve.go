// Package serve is calibrod's engine: a compile-as-a-service front end
// over the existing pipeline. It composes the pieces the previous work
// built — core.BuildCtx for cancellable builds, the bounded par pool
// inside every stage, one process-wide content-addressed cache.Cache, and
// one process-wide obs.Tracer — into an HTTP daemon with real serving
// semantics:
//
//   - a bounded job queue in front of a fixed pool of build workers, with
//     queue-depth backpressure: a submit that finds the queue full is
//     rejected immediately (HTTP 429 + Retry-After), never buffered —
//     admission control happens at the edge, not by unbounded memory;
//   - per-job deadlines and client cancellation, both delivered as one
//     context.Context threaded through core.BuildCtx down to the pool's
//     per-task pickup check, so a dead job stops consuming CPU at method
//     granularity;
//   - graceful drain: Drain stops admission, lets queued and running jobs
//     finish, and only force-cancels them if its own context expires —
//     the SIGTERM story a fleet scheduler expects;
//   - a /metrics surface exporting the server counters (queue depth,
//     queue-wait percentiles, job totals), the shared cache's hit rate,
//     and the full PR-3 telemetry snapshot.
//
// Determinism is inherited, not re-proven: a job's image is byte-identical
// to a direct core.Build of the same app and configuration, because the
// cache, the tracer, the worker pool, and the context all observe or
// schedule without steering output. The serve tests pin that end to end.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Config parameterizes the daemon. The zero value of every field selects
// a sensible default, so serve.New(serve.Config{}) is a working server.
type Config struct {
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// a submit beyond it is rejected with ErrQueueFull (HTTP 429).
	// Default 16.
	QueueDepth int
	// Workers is the number of concurrent builds (not to be confused
	// with the per-build pool width). Default 2.
	Workers int
	// BuildWorkers is the default core.Config.Workers for jobs that do
	// not pick their own; <= 0 selects GOMAXPROCS.
	BuildWorkers int
	// MaxJobTime caps every job's deadline, measured from submission
	// (queue time counts — a deadline is a promise to the client, not to
	// the scheduler). A request's timeout_ms may shorten it, never extend
	// it. Default 2 minutes.
	MaxJobTime time.Duration
	// Scale is the app scale factor for jobs that name a profile without
	// one. Default 0.25.
	Scale float64
	// Cache, when non-nil, is shared by every job: concurrent and
	// repeated submissions of the same compilation inputs hit instead of
	// recompiling. Bound it with cache.SetLimits in a long-lived process.
	Cache *cache.Cache
	// Remote, when non-nil, enables the fleet layer: eligible jobs are
	// served from published whole-build artifacts and coalesced across
	// daemons via single-flight claims (see fleet.go). Defaults to the
	// remote tier attached to Cache, so wiring -remote-cache once covers
	// both the method cache and the fleet layer.
	Remote *cache.Remote
	// FleetWait bounds how long a single-flight loser waits for the
	// winner's artifact before building locally anyway. Default 30s.
	FleetWait time.Duration
	// Tracer, when non-nil, records every job's build telemetry into one
	// process-wide recording, exported by /metrics. Job lifecycle spans
	// (queued, terminal state) are stitched into it on obs.LaneServe with
	// the job's numeric ID as the "job" correlation arg.
	Tracer *obs.Tracer
	// Log, when non-nil, receives structured JSON job and HTTP access
	// events. Logging observes committed state transitions and never
	// steers admission, scheduling, or build output.
	Log *EventLogger
	// MaxBody bounds a submit request body in bytes; a payload beyond it
	// is rejected with HTTP 413 before it can occupy memory. Default
	// 64 MiB.
	MaxBody int64
	// Retention bounds how many terminal jobs stay pollable: beyond it,
	// the oldest finished/failed/canceled jobs are forgotten (their
	// endpoints answer 404). Queued and running jobs are never evicted.
	// Default 1024; negative keeps every job forever.
	Retention int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxJobTime <= 0 {
		c.MaxJobTime = 2 * time.Minute
	}
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	if c.Retention == 0 {
		c.Retention = 1024
	}
	if c.Remote == nil && c.Cache != nil {
		c.Remote = c.Cache.Remote()
	}
	if c.FleetWait <= 0 {
		c.FleetWait = 30 * time.Second
	}
	return c
}

// Sentinel errors the HTTP layer maps onto statuses.
var (
	// ErrQueueFull rejects a submit when every queue slot is taken
	// (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining rejects a submit after Drain began (HTTP 503).
	ErrDraining = errors.New("serve: server is draining")
)

// Server runs build jobs from a bounded queue on a fixed worker pool.
// Create with New; every method is safe for concurrent use.
type Server struct {
	cfg Config

	// enqMu serializes admission against drain: submit checks draining
	// and sends while holding it, Drain flips the flag and closes the
	// queue while holding it, so nobody sends on a closed channel.
	enqMu    sync.Mutex
	draining bool
	queue    chan *job

	wg sync.WaitGroup // build workers

	mu      sync.Mutex
	jobs    map[string]*job
	nextID  int64
	retired []string // terminal job IDs, oldest first, for Retention

	running  atomic.Int64 // jobs in a worker right now
	accepted atomic.Int64 // submits that entered the queue
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	rejected atomic.Int64 // 429s
	invalid  atomic.Int64 // submits refused as unparseable/invalid (400/413)

	// Fleet outcomes (zero without a remote tier): jobs served from a
	// published artifact, builds this daemon won and published, jobs
	// coalesced onto a peer's build, and long-poll losers that gave up
	// and built locally.
	fleetHits      atomic.Int64
	fleetWins      atomic.Int64
	fleetCoalesced atomic.Int64
	fleetFallbacks atomic.Int64

	// Bounded distributions: fixed-size histograms, so a daemon serving
	// millions of jobs holds the same few KB it held after the first one.
	queueWait obs.Histogram // dequeue - submit, µs
	jobDur    obs.Histogram // terminal - submit (end-to-end), µs
}

// New starts the worker pool and returns a serving Server. Callers serve
// HTTP with Handler and stop with Drain.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// submit validates and admits one job: registered, deadlined, and either
// queued or rejected — a full queue answers now, it never blocks the
// caller behind other people's builds.
func (s *Server) submit(req JobRequest) (*job, error) {
	req = req.withDefaults(s.cfg.Scale)
	if err := req.validate(); err != nil {
		return nil, err
	}
	timeout := s.cfg.MaxJobTime
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j := &job{
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}

	s.enqMu.Lock()
	if s.draining {
		s.enqMu.Unlock()
		cancel()
		return nil, ErrDraining
	}
	// The ID must be set before the queue send: the moment the send
	// lands, a worker may read j.seq and j.id, and the send is the only
	// happens-before edge between submit and that worker. Submits
	// serialize on enqMu, so un-claiming the ID on rejection keeps IDs
	// dense.
	s.mu.Lock()
	s.nextID++
	j.seq = s.nextID
	j.id = fmt.Sprintf("j%d", s.nextID)
	s.mu.Unlock()
	select {
	case s.queue <- j:
		// Register only admitted jobs: a rejected submit leaves no trace
		// to leak, and an admitted one is pollable the moment the submit
		// response is written.
		s.mu.Lock()
		s.jobs[j.id] = j
		s.mu.Unlock()
		s.enqMu.Unlock()
		s.accepted.Add(1)
		s.cfg.Log.Log("job_accept", map[string]any{
			"job": j.id, "kind": req.Kind, "app": req.App,
		})
		return j, nil
	default:
		s.mu.Lock()
		s.nextID--
		s.mu.Unlock()
		s.enqMu.Unlock()
		cancel()
		s.rejected.Add(1)
		s.cfg.Log.Log("job_reject", map[string]any{
			"kind": req.Kind, "app": req.App, "reason": "queue_full",
		})
		return nil, ErrQueueFull
	}
}

// lookup returns a registered job by ID.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// worker is one build lane: it drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one dequeued job. A job cancelled or expired while
// queued is finished without building; everything else builds under the
// job's context, so cancellation mid-build stops at the pool's next task
// pickup.
func (s *Server) runJob(j *job) {
	now := time.Now()
	wait := now.Sub(j.submitted)
	s.queueWait.Observe(wait.Microseconds())
	s.cfg.Tracer.SpanAt("serve", "queued", obs.LaneServe, j.submitted, now,
		map[string]int64{"job": j.seq})

	j.mu.Lock()
	if terminal(j.state) { // cancelled while queued; already finished
		j.mu.Unlock()
		return
	}
	j.queueWait = wait
	j.dequeued = now
	if err := j.ctx.Err(); err != nil {
		j.mu.Unlock()
		s.finishJob(j, nil, err)
		return
	}
	j.state = StateRunning
	j.mu.Unlock()
	s.cfg.Log.Log("job_start", map[string]any{
		"job": j.id, "kind": j.req.Kind, "app": j.req.App,
		"queue_wait_us": wait.Microseconds(),
	})

	s.running.Add(1)
	out, err := s.build(j.ctx, j.req, wait)
	s.running.Add(-1)
	s.finishJob(j, out, err)
}

// finishJob moves a job to its terminal state exactly once; later calls
// (a cancel racing the worker) are no-ops.
func (s *Server) finishJob(j *job, out *buildOutput, err error) {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.image = out.image
		j.stats = out.stats
		j.lint = out.lint
		s.done.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errMsg = err.Error()
		s.canceled.Add(1)
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.failed.Add(1)
	}
	state, errMsg := j.state, j.errMsg
	started, finished := j.dequeued, j.finished
	close(j.doneCh)
	j.mu.Unlock()
	j.cancel() // release the deadline timer

	wall := finished.Sub(j.submitted)
	s.jobDur.Observe(wall.Microseconds())
	if !started.IsZero() {
		// The run span is named by outcome, so the serve lane of the
		// global trace reads as a timeline of terminal states.
		s.cfg.Tracer.SpanAt("serve", string(state), obs.LaneServe,
			started, finished, map[string]int64{"job": j.seq})
	}
	s.cfg.Log.Log("job_finish", map[string]any{
		"job": j.id, "state": string(state), "wall_us": wall.Microseconds(),
		"error": errMsg,
	})
	s.retire(j.id)
}

// retire records one more terminal job and evicts the oldest beyond the
// retention window, so the jobs registry is bounded no matter how long
// the daemon serves. Eviction only ever touches terminal jobs (retired
// holds nothing else), so a queued or running job is never forgotten.
func (s *Server) retire(id string) {
	if s.cfg.Retention < 0 {
		return
	}
	s.mu.Lock()
	s.retired = append(s.retired, id)
	for len(s.retired) > s.cfg.Retention {
		delete(s.jobs, s.retired[0])
		s.retired[0] = ""
		s.retired = s.retired[1:]
	}
	// Don't let the sliced-off prefix pin the backing array forever.
	if cap(s.retired) > 2*len(s.retired)+16 {
		s.retired = append([]string(nil), s.retired...)
	}
	s.mu.Unlock()
}

// cancelJob delivers a client cancellation: the job's context is
// cancelled (a running build stops at the pool's next task pickup), and a
// still-queued job is finished immediately — the worker that eventually
// dequeues it finds it terminal and skips.
func (s *Server) cancelJob(j *job) {
	j.cancel()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		s.finishJob(j, nil, context.Canceled)
	}
}

// Drain stops admission (further submits fail with ErrDraining), lets
// every queued and running job finish, and returns when the worker pool
// has exited. If ctx expires first, every outstanding job is cancelled,
// the pool is still awaited (cancellation stops builds at task
// granularity, so this is prompt), and ctx's error is returned. Drain is
// idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.enqMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.enqMu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.enqMu.Lock()
	defer s.enqMu.Unlock()
	return s.draining
}
