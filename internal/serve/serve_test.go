// The serving contract, end to end over real HTTP: admission and
// backpressure, deadlines and cancellation actually stopping work (pinned
// via the tracer), drain semantics, and — the one that matters most —
// images from the daemon byte-identical to direct core builds, including
// under concurrent mixed-configuration load on a shared cache.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dex"
	"repro/internal/oat"
	"repro/internal/obs"
	"repro/internal/workload"
)

// newTestServer builds a Server and an httptest front end, both torn down
// with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// queueOnlyServer builds a Server with NO workers: jobs queue and stay
// queued, which makes admission and cancel-while-queued deterministic.
func queueOnlyServer(depth int) *Server {
	cfg := Config{QueueDepth: depth}.withDefaults()
	return &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
	}
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, *JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return &http.Response{StatusCode: resp.StatusCode, Header: resp.Header}, &JobStatus{Error: string(b)}
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp, &st
}

// waitTerminal long-polls the status endpoint until the job is terminal.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return &st
		}
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return nil
}

func fetchImage(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/image")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("image fetch: status %d: %s", resp.StatusCode, b)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// directImage reproduces what the daemon should have built, via the
// library entry points with no cache and no tracer.
func directImage(t *testing.T, req JobRequest) []byte {
	t.Helper()
	req = req.withDefaults(0.25)
	app, man, err := loadApp(req)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ladder(req)
	cfg.Rounds = req.Rounds
	cfg.DedupFunctions = req.Dedup
	cfg.VerifyImage = req.Verify
	cfg.Workers = req.Workers

	var res *core.Result
	if req.Config == "hfopti" {
		res, _, err = core.ProfileGuidedBuildCtx(context.Background(), app, cfg, workload.Script(man, req.Runs, 1))
	} else {
		res, err = core.BuildCtx(context.Background(), app, cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Image.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSubmitPollFetchHappyPath(t *testing.T) {
	tr := obs.New()
	c := cache.New()
	_, ts := newTestServer(t, Config{Workers: 2, Cache: c, Tracer: tr})

	req := JobRequest{App: "Taobao", Scale: 0.05, Config: "plopti", Lint: true}
	resp, st := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	if st.ID == "" || st.State != StateQueued && st.State != StateRunning && st.State != StateDone {
		t.Fatalf("submit response: %+v", st)
	}

	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Stats == nil {
		t.Fatal("done status has no stats")
	}
	if fin.Stats.App != "Taobao" || fin.Stats.Config != "plopti" {
		t.Errorf("stats identify %s/%s, want Taobao/plopti", fin.Stats.App, fin.Stats.Config)
	}
	if fin.Stats.ImageBytes <= 0 || fin.Stats.Methods <= 0 {
		t.Errorf("stats sizes not populated: %+v", fin.Stats)
	}
	if fin.Stats.LintFindings < 0 {
		t.Error("lint was requested but LintFindings is -1")
	}

	img := fetchImage(t, ts, st.ID)
	if len(img) != fin.Stats.ImageBytes {
		t.Errorf("image is %d bytes, stats say %d", len(img), fin.Stats.ImageBytes)
	}
	if want := directImage(t, req); !bytes.Equal(img, want) {
		t.Errorf("daemon image (%d bytes) differs from direct build (%d bytes)", len(img), len(want))
	}

	// The stats endpoint agrees with the embedded stats.
	resp2, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats JobStats
	err = json.NewDecoder(resp2.Body).Decode(&stats)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ImageBytes != fin.Stats.ImageBytes {
		t.Errorf("stats endpoint image_bytes %d, status embed %d", stats.ImageBytes, fin.Stats.ImageBytes)
	}

	// Lint findings are fetchable (the list may be empty; the route must
	// answer 200 since lint was requested).
	resp3, err := http.Get(ts.URL + "/jobs/" + st.ID + "/lint")
	if err != nil {
		t.Fatal(err)
	}
	var lint []FindingJSON
	err = json.NewDecoder(resp3.Body).Decode(&lint)
	resp3.Body.Close()
	if err != nil || resp3.StatusCode != http.StatusOK {
		t.Fatalf("lint fetch: status %d err %v", resp3.StatusCode, err)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"no input", JobRequest{Config: "plopti"}},
		{"both inputs", JobRequest{App: "Taobao", Dex: []byte("x"), Config: "plopti"}},
		{"unknown app", JobRequest{App: "NotAnApp", Config: "plopti"}},
		{"unknown config", JobRequest{App: "Taobao", Config: "turbo"}},
	}
	for _, tc := range cases {
		resp, st := postJob(t, ts, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, st.Error)
		}
	}
}

func TestBackpressureFullQueue(t *testing.T) {
	// No workers: every admitted job stays queued, so the queue fills
	// deterministically.
	s := queueOnlyServer(1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{App: "Taobao", Scale: 0.05}
	if resp, st := postJob(t, ts, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, st.Error)
	}
	resp, st := postJob(t, ts, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d (%s), want 429", resp.StatusCode, st.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response has no Retry-After header")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// The rejection is visible in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(mresp.Body).Decode(&m)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueDepth != 1 || m.QueueCap != 1 || m.JobsRejected != 1 || m.JobsAccepted != 1 {
		t.Errorf("metrics = depth %d cap %d rejected %d accepted %d, want 1/1/1/1",
			m.QueueDepth, m.QueueCap, m.JobsRejected, m.JobsAccepted)
	}
}

// TestDeadlineExpiredJobStopsWork pins the acceptance criterion: once a
// job's deadline fires, the daemon stops doing work for it — the tracer
// records no new compile/outline spans afterwards, and far fewer compile
// spans than the app has methods.
func TestDeadlineExpiredJobStopsWork(t *testing.T) {
	tr := obs.New()
	_, ts := newTestServer(t, Config{Workers: 1, Tracer: tr})

	// Kuaishou at full scale builds in ~1s; a 30ms deadline expires
	// mid-compile.
	req := JobRequest{App: "Kuaishou", Scale: 1.0, Config: "plopti", TimeoutMS: 30}
	resp, st := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("job finished %s, want failed (deadline)", fin.State)
	}
	if !strings.Contains(fin.Error, "deadline") {
		t.Errorf("failure reason %q does not mention the deadline", fin.Error)
	}

	spanCount := func() int64 {
		snap := tr.Snapshot()
		var n int64
		for cat, ts := range snap.Tasks {
			if cat == "compile" || strings.HasPrefix(cat, "outline") {
				n += int64(ts.Count)
			}
		}
		return n
	}
	after := spanCount()
	prof, _ := workload.AppByName("Kuaishou", 1.0)
	if after >= int64(prof.Methods) {
		t.Errorf("%d compile/outline spans recorded for a %d-method app that should have died at ~30ms",
			after, prof.Methods)
	}
	time.Sleep(150 * time.Millisecond)
	if later := spanCount(); later != after {
		t.Errorf("spans kept appearing after the job failed: %d -> %d", after, later)
	}

	// The image endpoint refuses with the job's failure.
	iresp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/image")
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusConflict {
		t.Errorf("image fetch of failed job: status %d, want 409", iresp.StatusCode)
	}
}

// TestCancelMidBuild cancels over HTTP while the build is running and
// asserts the job lands in canceled with no further spans.
func TestCancelMidBuild(t *testing.T) {
	tr := obs.New()
	s, ts := newTestServer(t, Config{Workers: 1, Tracer: tr})

	req := JobRequest{App: "Kuaishou", Scale: 1.0, Config: "plopti"}
	resp, st := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	j, ok := s.lookup(st.ID)
	if !ok {
		t.Fatal("submitted job not registered")
	}
	// Wait for the worker to pick it up, then cancel. The build takes ~1s,
	// so the cancel lands mid-flight.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if cur := j.status(); cur.State == StateRunning {
			break
		} else if terminal(cur.State) {
			t.Fatalf("job reached %s before it could be cancelled", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	dreq, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateCanceled {
		t.Fatalf("job finished %s, want canceled", fin.State)
	}
	count := func() int {
		n := 0
		for cat, tsk := range tr.Snapshot().Tasks {
			if cat == "compile" || strings.HasPrefix(cat, "outline") {
				n += tsk.Count
			}
		}
		return n
	}
	after := count()
	time.Sleep(150 * time.Millisecond)
	if later := count(); later != after {
		t.Errorf("spans kept appearing after cancellation: %d -> %d", after, later)
	}
}

// TestCancelQueuedJob cancels a job that never reached a worker: it must
// finish immediately as canceled.
func TestCancelQueuedJob(t *testing.T) {
	s := queueOnlyServer(4)
	j, err := s.submit(JobRequest{App: "Taobao", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s.cancelJob(j)
	select {
	case <-j.doneCh:
	case <-time.After(time.Second):
		t.Fatal("cancelled queued job did not finish")
	}
	if st := j.status(); st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if got := s.canceled.Load(); got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
}

// TestConcurrentIdenticalSubmissions drives the same job from several
// clients at once against a shared cache: every image must be identical
// and the cache must take hits.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	c := cache.New()
	_, ts := newTestServer(t, Config{Workers: 2, Cache: c})

	req := JobRequest{App: "Fanqie", Scale: 0.05, Config: "plopti"}
	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, st := postJob(t, ts, req)
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("submit %d: status %d: %s", i, resp.StatusCode, st.Error)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var first []byte
	for i, id := range ids {
		fin := waitTerminal(t, ts, id)
		if fin.State != StateDone {
			t.Fatalf("job %d finished %s (%s)", i, fin.State, fin.Error)
		}
		img := fetchImage(t, ts, id)
		if first == nil {
			first = img
		} else if !bytes.Equal(img, first) {
			t.Fatalf("job %d image differs from job 0", i)
		}
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Errorf("cache took no hits across %d identical submissions: %+v", n, st)
	}
	if !bytes.Equal(first, directImage(t, req)) {
		t.Error("cached daemon image differs from direct build")
	}
}

// TestMixedConfigLoadByteIdentical is the central determinism check: the
// whole evaluation ladder submitted concurrently to one daemon sharing a
// cache and a tracer, every image byte-identical to a direct library
// build of the same app and configuration.
func TestMixedConfigLoadByteIdentical(t *testing.T) {
	c := cache.New()
	tr := obs.New()
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 16, Cache: c, Tracer: tr})

	configs := []string{"baseline", "cto", "ltbo", "plopti", "hfopti"}
	reqs := make([]JobRequest, len(configs))
	ids := make([]string, len(configs))
	for i, cfg := range configs {
		reqs[i] = JobRequest{App: "Meituan", Scale: 0.05, Config: cfg, Dedup: true}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(configs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, st := postJob(t, ts, reqs[i])
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("%s: status %d: %s", configs[i], resp.StatusCode, st.Error)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		fin := waitTerminal(t, ts, id)
		if fin.State != StateDone {
			t.Fatalf("%s finished %s (%s)", configs[i], fin.State, fin.Error)
		}
		img := fetchImage(t, ts, id)
		if want := directImage(t, reqs[i]); !bytes.Equal(img, want) {
			t.Errorf("%s: daemon image (%d bytes) != direct build (%d bytes)", configs[i], len(img), len(want))
		}
	}
}

// TestDexPayloadSubmit submits a serialized dex container instead of a
// profile name.
func TestDexPayloadSubmit(t *testing.T) {
	prof, _ := workload.AppByName("Taobao", 0.05)
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := dex.Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, st := postJob(t, ts, JobRequest{Dex: payload, Config: "ltbo"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Stats.Methods != app.NumMethods() {
		t.Errorf("built %d methods, payload has %d", fin.Stats.Methods, app.NumMethods())
	}
}

// TestDrain: queued and running jobs finish, later submits are refused,
// and the drain state shows in /healthz.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{App: "Taobao", Scale: 0.05}
	var sts []*JobStatus
	for i := 0; i < 3; i++ {
		resp, st := postJob(t, ts, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, st.Error)
		}
		sts = append(sts, st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, st := range sts {
		j, ok := s.lookup(st.ID)
		if !ok {
			t.Fatalf("job %d lost", i)
		}
		if got := j.status(); got.State != StateDone {
			t.Errorf("job %d drained as %s (%s), want done", i, got.State, got.Error)
		}
	}

	if _, err := s.submit(req); err != ErrDraining {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
	resp, _ := postJob(t, ts, req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("HTTP submit after drain: status %d, want 503", resp.StatusCode)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	err = json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("healthz after drain: %q, want draining", h.Status)
	}

	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second Drain: %v", err)
	}
}

// TestMetricsSurface checks the /metrics fields the acceptance criteria
// name: queue depth, queue-wait percentiles, cache hit rate, telemetry.
func TestMetricsSurface(t *testing.T) {
	c := cache.New()
	tr := obs.New()
	_, ts := newTestServer(t, Config{Workers: 1, Cache: c, Tracer: tr})

	req := JobRequest{App: "Taobao", Scale: 0.05}
	for i := 0; i < 2; i++ {
		resp, st := postJob(t, ts, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
			t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsDone != 2 || m.JobsAccepted != 2 {
		t.Errorf("done/accepted = %d/%d, want 2/2", m.JobsDone, m.JobsAccepted)
	}
	if m.QueueWait.Count != 2 {
		t.Errorf("queue-wait samples = %d, want 2", m.QueueWait.Count)
	}
	if m.QueueWait.P95US < m.QueueWait.P50US {
		t.Errorf("queue-wait p95 %d < p50 %d", m.QueueWait.P95US, m.QueueWait.P50US)
	}
	if m.Cache == nil {
		t.Fatal("metrics carry no cache stats despite a configured cache")
	}
	// The second identical job hits the per-method compile cache.
	if m.Cache.Hits == 0 || m.CacheHitRate <= 0 {
		t.Errorf("cache hit rate = %v (hits %d), want > 0", m.CacheHitRate, m.Cache.Hits)
	}
	if m.Telemetry == nil || m.Telemetry.Tasks["compile"].Count == 0 {
		t.Error("metrics carry no telemetry despite a configured tracer")
	}
}

// TestLongPollReturnsEarly: a ?wait poll on a finished job answers
// immediately rather than sleeping out the window.
func TestLongPollReturnsEarly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, st := postJob(t, ts, JobRequest{App: "Taobao", Scale: 0.05})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitTerminal(t, ts, st.ID)

	t0 := time.Now()
	presp, err := http.Get(ts.URL + "/jobs/" + st.ID + "?wait=30s")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if el := time.Since(t0); el > 5*time.Second {
		t.Errorf("poll of a finished job took %v", el)
	}
}

func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/jobs/nope", "/jobs/nope/image", "/jobs/nope/stats", "/jobs/nope/lint"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestDebloatJob drives the debloat job kind end to end over HTTP: build
// an image directly, submit it for debloating rooted at the first
// activity, and check the returned image is smaller-or-equal, parses, and
// the stats report the removal.
func TestDebloatJob(t *testing.T) {
	prof, ok := workload.AppByName("Taobao", 0.05)
	if !ok {
		t.Fatal("Taobao profile missing")
	}
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, core.CTOLTBO())
	if err != nil {
		t.Fatal(err)
	}
	oatData, err := res.Image.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1})
	resp, st := postJob(t, ts, JobRequest{Kind: KindDebloat, Oat: oatData, Roots: []uint32{0}, Lint: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state %s (%s), want done", final.State, final.Error)
	}
	stats := final.Stats
	if stats == nil || stats.Kind != KindDebloat {
		t.Fatalf("stats = %+v, want debloat kind", stats)
	}
	if stats.TextBytes > stats.TextBytesBefore {
		t.Errorf("debloat grew text: %d -> %d", stats.TextBytesBefore, stats.TextBytes)
	}
	if stats.TextBytesBefore != res.Image.TextBytes() {
		t.Errorf("stats.TextBytesBefore = %d, input had %d", stats.TextBytesBefore, res.Image.TextBytes())
	}
	if stats.LintFindings != 0 {
		t.Errorf("debloated image has %d lint findings", stats.LintFindings)
	}
	small := fetchImage(t, ts, st.ID)
	img, err := oat.Unmarshal(small)
	if err != nil {
		t.Fatalf("debloated image does not parse: %v", err)
	}
	if img.TextBytes() != stats.TextBytes {
		t.Errorf("fetched image text %d, stats say %d", img.TextBytes(), stats.TextBytes)
	}
}

// TestReoutlineJob drives the reoutline job kind end to end over HTTP:
// build an outlining-disabled image directly, submit it for post-hoc
// re-outlining, and check the returned image is smaller, parses, and the
// stats report the lift census.
func TestReoutlineJob(t *testing.T) {
	prof, ok := workload.AppByName("Taobao", 0.05)
	if !ok {
		t.Fatal("Taobao profile missing")
	}
	app, _, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build(app, core.CTOOnly())
	if err != nil {
		t.Fatal(err)
	}
	oatData, err := res.Image.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Workers: 1})
	resp, st := postJob(t, ts, JobRequest{Kind: KindReoutline, Oat: oatData, Lint: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, st.Error)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state %s (%s), want done", final.State, final.Error)
	}
	stats := final.Stats
	if stats == nil || stats.Kind != KindReoutline {
		t.Fatalf("stats = %+v, want reoutline kind", stats)
	}
	if stats.TextBytes >= stats.TextBytesBefore {
		t.Errorf("reoutline did not shrink text: %d -> %d", stats.TextBytesBefore, stats.TextBytes)
	}
	if stats.TextBytesBefore != res.Image.TextBytes() {
		t.Errorf("stats.TextBytesBefore = %d, input had %d", stats.TextBytesBefore, res.Image.TextBytes())
	}
	if stats.MethodsLifted == 0 || stats.OutlinedCreated == 0 {
		t.Errorf("lift census looks empty: lifted=%d created=%d", stats.MethodsLifted, stats.OutlinedCreated)
	}
	if stats.LintFindings != 0 {
		t.Errorf("re-outlined image has %d lint findings", stats.LintFindings)
	}
	small := fetchImage(t, ts, st.ID)
	img, err := oat.Unmarshal(small)
	if err != nil {
		t.Fatalf("re-outlined image does not parse: %v", err)
	}
	if img.TextBytes() != stats.TextBytes {
		t.Errorf("fetched image text %d, stats say %d", img.TextBytes(), stats.TextBytes)
	}

	// The daemon adds scheduling, never output: its image must be
	// byte-identical to a direct core.ReoutlineImage of the same input.
	direct, _, err := core.ReoutlineImage(res.Image, core.ReoutlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, want) {
		t.Errorf("daemon re-outlined image differs from the direct pass (%d vs %d bytes)", len(small), len(want))
	}
}

// TestDebloatJobValidation pins the request-shape errors for the new
// kind.
func TestDebloatJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"debloat without oat", JobRequest{Kind: KindDebloat}},
		{"debloat with app", JobRequest{Kind: KindDebloat, Oat: []byte("x"), App: "Taobao"}},
		{"build with oat", JobRequest{App: "Taobao", Oat: []byte("x")}},
		{"build with roots", JobRequest{App: "Taobao", Roots: []uint32{1}}},
		{"unknown kind", JobRequest{Kind: "shrink", App: "Taobao"}},
		{"reoutline without oat", JobRequest{Kind: KindReoutline}},
		{"reoutline with app", JobRequest{Kind: KindReoutline, Oat: []byte("x"), App: "Taobao"}},
		{"reoutline with roots", JobRequest{Kind: KindReoutline, Oat: []byte("x"), Roots: []uint32{1}}},
	}
	for _, tc := range cases {
		resp, st := postJob(t, ts, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, st.Error)
		}
	}
}
