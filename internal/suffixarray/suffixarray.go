// Package suffixarray provides an alternative repeat-detection backend to
// the suffix tree of internal/suffixtree: a suffix array with an LCP table,
// built by prefix doubling (O(n log² n)) with Kasai's LCP algorithm (O(n)).
//
// The motivation comes straight from the paper's §3.4/§4.4 discussion: the
// global suffix tree's memory footprint is what breaks down at production
// scale (it cannot even run on the 8 GB device). A suffix array stores
// three integer arrays instead of a pointer-and-map tree — roughly an
// order of magnitude less memory — while exposing exactly the same
// repeats: the LCP-interval tree of a suffix array is isomorphic to the
// suffix tree's internal nodes, which the equivalence tests check.
package suffixarray

import "sort"

// Array is a built suffix array with its LCP table.
type Array struct {
	seq []uint32
	sa  []int32 // suffix start positions in lexicographic order
	lcp []int32 // lcp[i] = longest common prefix of sa[i-1] and sa[i]; lcp[0]=0
}

// Build constructs the suffix array of seq. As with the suffix tree, the
// caller terminates sequences with unique separator symbols.
func Build(seq []uint32) *Array {
	n := len(seq)
	a := &Array{seq: seq, sa: make([]int32, n), lcp: make([]int32, n)}
	if n == 0 {
		return a
	}

	// Prefix doubling. rank holds the sort key of each suffix for the
	// current prefix length k; tmp is the scratch for recomputed ranks.
	rank := make([]int64, n)
	tmp := make([]int64, n)
	for i, s := range seq {
		a.sa[i] = int32(i)
		rank[i] = int64(s)
	}
	key := func(i int32, k int) int64 {
		if int(i)+k < n {
			return rank[int(i)+k]
		}
		return -1
	}
	for k := 1; ; k *= 2 {
		sort.Slice(a.sa, func(x, y int) bool {
			ix, iy := a.sa[x], a.sa[y]
			if rank[ix] != rank[iy] {
				return rank[ix] < rank[iy]
			}
			return key(ix, k) < key(iy, k)
		})
		tmp[a.sa[0]] = 0
		for i := 1; i < n; i++ {
			prev, cur := a.sa[i-1], a.sa[i]
			tmp[cur] = tmp[prev]
			if rank[prev] != rank[cur] || key(prev, k) != key(cur, k) {
				tmp[cur]++
			}
		}
		copy(rank, tmp)
		if rank[a.sa[n-1]] == int64(n-1) {
			break // all distinct: fully sorted
		}
	}

	// Kasai's LCP.
	pos := make([]int32, n) // suffix -> position in sa
	for i, s := range a.sa {
		pos[s] = int32(i)
	}
	h := 0
	for i := 0; i < n; i++ {
		p := pos[i]
		if p == 0 {
			h = 0
			continue
		}
		j := int(a.sa[p-1])
		for i+h < n && j+h < n && seq[i+h] == seq[j+h] {
			h++
		}
		a.lcp[p] = int32(h)
		if h > 0 {
			h--
		}
	}
	return a
}

// Len returns the sequence length.
func (a *Array) Len() int { return len(a.seq) }

// SA returns the suffix array (do not modify).
func (a *Array) SA() []int32 { return a.sa }

// LCP returns the LCP table (do not modify).
func (a *Array) LCP() []int32 { return a.lcp }

// Repeat is one maximal repeat: an LCP interval. The subsequence of the
// given Length starts at every position in Occurrences.
type Repeat struct {
	Length int
	Count  int
	lo, hi int // interval [lo, hi] in sa
	arr    *Array
}

// First returns one deterministic occurrence start (the suffix-array-order
// first) without materializing the full Occurrences slice.
func (r Repeat) First() int { return int(r.arr.sa[r.lo]) }

// Occurrences returns the start positions (unsorted).
func (r Repeat) Occurrences() []int {
	out := make([]int, 0, r.hi-r.lo+1)
	for i := r.lo; i <= r.hi; i++ {
		out = append(out, int(r.arr.sa[i]))
	}
	return out
}

// Label returns the repeated subsequence.
func (r Repeat) Label() []uint32 {
	start := int(r.arr.sa[r.lo])
	return r.arr.seq[start : start+r.Length]
}

// Repeats enumerates the LCP intervals with Length >= minLen and
// Count >= minCount — exactly the internal nodes of the suffix tree. The
// classic stack algorithm walks the LCP table once.
func (a *Array) Repeats(minLen, minCount int) []Repeat {
	if minCount < 2 {
		minCount = 2
	}
	n := len(a.seq)
	if n == 0 {
		return nil
	}
	type frame struct {
		lcp int32
		lo  int
	}
	var out []Repeat
	var stack []frame
	emit := func(f frame, hi int) {
		count := hi - f.lo + 1
		if int(f.lcp) >= minLen && count >= minCount {
			out = append(out, Repeat{
				Length: int(f.lcp), Count: count, lo: f.lo, hi: hi, arr: a,
			})
		}
	}
	for i := 1; i < n; i++ {
		lo := i - 1
		for len(stack) > 0 && stack[len(stack)-1].lcp > a.lcp[i] {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			emit(top, i-1)
			lo = top.lo
		}
		if a.lcp[i] > 0 && (len(stack) == 0 || stack[len(stack)-1].lcp < a.lcp[i]) {
			stack = append(stack, frame{lcp: a.lcp[i], lo: lo})
		}
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		emit(top, n-1)
	}
	return out
}
