package suffixarray

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/suffixtree"
)

func sym(s string) []uint32 {
	out := make([]uint32, len(s))
	for i := range s {
		out[i] = uint32(s[i])
	}
	return out
}

func TestSuffixArrayOrder(t *testing.T) {
	seq := sym("banana$")
	a := Build(seq)
	// Verify lexicographic order directly.
	sa := a.SA()
	less := func(i, j int32) bool {
		x, y := seq[i:], seq[j:]
		for k := 0; k < len(x) && k < len(y); k++ {
			if x[k] != y[k] {
				return x[k] < y[k]
			}
		}
		return len(x) < len(y)
	}
	for i := 1; i < len(sa); i++ {
		if !less(sa[i-1], sa[i]) {
			t.Fatalf("sa not sorted at %d: %v", i, sa)
		}
	}
	// LCP sanity: lcp of "ana..." suffixes.
	found3 := false
	for _, l := range a.LCP() {
		if l == 3 {
			found3 = true // "ana" shared between "ana$" and "anana$"
		}
	}
	if !found3 {
		t.Errorf("lcp table %v lacks the ana overlap", a.LCP())
	}
}

func TestRepeatsMatchBananaTree(t *testing.T) {
	a := Build(sym("banana$"))
	got := map[string]int{}
	for _, r := range a.Repeats(1, 2) {
		label := ""
		for _, s := range r.Label() {
			label += string(rune(s))
		}
		got[label] = r.Count
	}
	want := map[string]int{"a": 3, "ana": 2, "na": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("repeats = %v, want %v", got, want)
	}
}

// TestEquivalenceWithSuffixTree: on random sequences, the LCP-interval
// repeats must be exactly the suffix tree's internal-node repeats —
// same (label, count, occurrence set) families.
func TestEquivalenceWithSuffixTree(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(200)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = uint32(r.Intn(2 + r.Intn(6)))
		}
		seq = append(seq, 0xFFFFFFFF)

		type fam struct {
			label string
			count int
			occ   string
		}
		famKey := func(label []uint32, occ []int) fam {
			sort.Ints(occ)
			lb, ob := "", ""
			for _, s := range label {
				lb += string(rune(s)) + ","
			}
			for _, o := range occ {
				ob += string(rune(o)) + ","
			}
			return fam{label: lb, count: len(occ), occ: ob}
		}

		tree := suffixtree.Build(seq)
		want := map[fam]bool{}
		for _, rep := range tree.Repeats(1, 2) {
			want[famKey(tree.Label(rep.Node), tree.Occurrences(rep.Node))] = true
		}
		arr := Build(seq)
		got := map[fam]bool{}
		for _, rep := range arr.Repeats(1, 2) {
			got[famKey(rep.Label(), rep.Occurrences())] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: detector disagreement: tree %d families, array %d families",
				trial, len(want), len(got))
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if a := Build(nil); a.Len() != 0 || len(a.Repeats(1, 2)) != 0 {
		t.Error("empty sequence mishandled")
	}
	if a := Build([]uint32{7}); len(a.Repeats(1, 2)) != 0 {
		t.Error("singleton produced repeats")
	}
}

func TestLCPKasaiAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(120)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = uint32(r.Intn(4))
		}
		seq = append(seq, 0xFFFFFFFF)
		a := Build(seq)
		sa, lcp := a.SA(), a.LCP()
		for i := 1; i < len(sa); i++ {
			want := 0
			x, y := int(sa[i-1]), int(sa[i])
			for x+want < len(seq) && y+want < len(seq) && seq[x+want] == seq[y+want] {
				want++
			}
			if int(lcp[i]) != want {
				t.Fatalf("trial %d: lcp[%d] = %d, want %d", trial, i, lcp[i], want)
			}
		}
	}
}
