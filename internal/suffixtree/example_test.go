package suffixtree_test

import (
	"fmt"
	"sort"

	"repro/internal/suffixtree"
)

// The paper's Figure 1 example: the suffix tree of "banana" exposes the
// repeated substrings and their occurrence counts.
func ExampleBuild() {
	seq := make([]uint32, 0, 7)
	for _, r := range "banana$" {
		seq = append(seq, uint32(r))
	}
	tree := suffixtree.Build(seq)

	var lines []string
	for _, rep := range tree.Repeats(1, 2) {
		label := ""
		for _, s := range tree.Label(rep.Node) {
			label += string(rune(s))
		}
		lines = append(lines, fmt.Sprintf("%q repeats %d times", label, rep.Count))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// "a" repeats 3 times
	// "ana" repeats 2 times
	// "na" repeats 2 times
}

// The Figure 2 benefit model: outlining a sequence of Length instructions
// that repeats RepeatedTimes saves Length*RepeatedTimes -
// (RepeatedTimes + 1 + Length) instructions.
func ExampleBenefit() {
	fmt.Println(suffixtree.Benefit(2, 2))  // too short and too rare: not worth it
	fmt.Println(suffixtree.Benefit(5, 10)) // clearly worth it
	fmt.Printf("%.3f\n", suffixtree.ReductionRatio(5, 10))
	// Output:
	// -1
	// 34
	// 0.680
}
