// Package suffixtree implements Ukkonen's on-line suffix tree construction
// (O(n), Ukkonen 1995) over sequences of uint32 symbols, plus the repeat
// enumeration and the benefit model (paper Figure 2) that Calibro's
// redundancy detection is built on (§2.1.2, §2.2, §3.3.2).
//
// Sequences are instruction words mapped to symbols by the outliner; every
// basic-block terminator is mapped to a symbol unique to its position, so
// no repeated substring can cross a basic-block boundary (§3.3.2). The same
// trick generalizes the tree: concatenating many methods with unique
// separators yields one tree over the whole program.
package suffixtree

import "fmt"

// node is one suffix-tree node. The edge leading into the node is labeled
// seq[start:end]; leaves use end == -1 meaning "to the end of the sequence"
// (Ukkonen's global end).
//
// Children are kept two ways: a first-child/next-sibling list on the nodes
// themselves for iteration, and a single tree-level map (Tree.children)
// for by-symbol lookup. The per-node map this replaces dominated the
// build's allocation profile — two heap objects per node — where the
// sibling list costs nothing and the shared map amortizes to a handful of
// allocations for the whole tree.
type node struct {
	start       int
	end         int
	link        int32
	firstChild  int32 // head of the child list, -1 for leaves
	nextSibling int32 // next child of this node's parent, -1 at the end

	// Filled by finish():
	leafCount int32
	depth     int32 // symbols from the root to the end of this node's edge
	parent    int32
}

// Tree is a built suffix tree.
type Tree struct {
	seq      []uint32
	nodes    []node
	children map[uint64]int32 // (parent, edge first symbol) -> child
	// internal build state
	activeNode   int32
	activeEdge   int
	activeLength int
	remainder    int
	finished     bool
}

const root int32 = 0

// childKey packs a parent node index and an edge's first symbol into the
// children map key.
func childKey(n int32, sym uint32) uint64 {
	return uint64(uint32(n))<<32 | uint64(sym)
}

// childOf looks up the child of n whose edge starts with sym.
func (t *Tree) childOf(n int32, sym uint32) (int32, bool) {
	c, ok := t.children[childKey(n, sym)]
	return c, ok
}

// setChild binds c as the child of parent under edge symbol sym, either
// adding it to the child list or substituting it for the previous holder
// (an Ukkonen split), which keeps the list position and hands the old
// child's sibling pointer to the new one.
func (t *Tree) setChild(parent int32, sym uint32, c int32) {
	key := childKey(parent, sym)
	if old, ok := t.children[key]; ok {
		next := t.nodes[old].nextSibling
		if t.nodes[parent].firstChild == old {
			t.nodes[parent].firstChild = c
		} else {
			p := t.nodes[parent].firstChild
			for t.nodes[p].nextSibling != old {
				p = t.nodes[p].nextSibling
			}
			t.nodes[p].nextSibling = c
		}
		t.nodes[c].nextSibling = next
	} else {
		t.nodes[c].nextSibling = t.nodes[parent].firstChild
		t.nodes[parent].firstChild = c
	}
	t.children[key] = c
}

// Build constructs the suffix tree of seq. The caller must guarantee that
// the final symbol of seq terminates every intended suffix (the outliner's
// per-position separator symbols provide this); Build appends nothing.
func Build(seq []uint32) *Tree {
	t := &Tree{
		seq:      seq,
		nodes:    make([]node, 1, 2*len(seq)+2),
		children: make(map[uint64]int32, len(seq)),
	}
	t.nodes[0] = node{start: -1, end: -1, firstChild: -1, nextSibling: -1}
	for i := range seq {
		t.extend(i)
	}
	t.finish()
	return t
}

// newNode appends a node and returns its index.
func (t *Tree) newNode(start, end int) int32 {
	t.nodes = append(t.nodes, node{start: start, end: end, firstChild: -1, nextSibling: -1})
	return int32(len(t.nodes) - 1)
}

// edgeEnd resolves a node's edge end against the current phase.
func (t *Tree) edgeEnd(n int32, pos int) int {
	if t.nodes[n].end == -1 {
		return pos
	}
	return t.nodes[n].end
}

// extend runs one Ukkonen phase for seq[i].
func (t *Tree) extend(i int) {
	t.remainder++
	var lastCreated int32 = -1
	addLink := func(n int32) {
		if lastCreated != -1 {
			t.nodes[lastCreated].link = n
		}
		lastCreated = n
	}
	for t.remainder > 0 {
		if t.activeLength == 0 {
			t.activeEdge = i
		}
		edgeSym := t.seq[t.activeEdge]
		child, ok := t.childOf(t.activeNode, edgeSym)
		if !ok {
			leaf := t.newNode(i, -1)
			t.setChild(t.activeNode, edgeSym, leaf)
			addLink(t.activeNode)
		} else {
			edgeLen := t.edgeEnd(child, i+1) - t.nodes[child].start
			if t.activeLength >= edgeLen {
				t.activeEdge += edgeLen
				t.activeLength -= edgeLen
				t.activeNode = child
				continue
			}
			if t.seq[t.nodes[child].start+t.activeLength] == t.seq[i] {
				t.activeLength++
				addLink(t.activeNode)
				break
			}
			split := t.newNode(t.nodes[child].start, t.nodes[child].start+t.activeLength)
			t.setChild(t.activeNode, edgeSym, split)
			leaf := t.newNode(i, -1)
			t.setChild(split, t.seq[i], leaf)
			t.nodes[child].start += t.activeLength
			t.setChild(split, t.seq[t.nodes[child].start], child)
			addLink(split)
		}
		t.remainder--
		if t.activeNode == root && t.activeLength > 0 {
			t.activeLength--
			t.activeEdge = i - t.remainder + 1
		} else if t.activeNode != root {
			t.activeNode = t.nodes[t.activeNode].link
		}
	}
}

// finish computes leaf counts, depths, and parents bottom-up.
func (t *Tree) finish() {
	if t.finished {
		return
	}
	t.finished = true
	n := len(t.seq)
	// Iterative post-order.
	type frame struct {
		node  int32
		stage int
	}
	stack := []frame{{node: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := &t.nodes[f.node]
		if f.stage == 0 {
			f.stage = 1
			if f.node != root {
				parentDepth := t.nodes[nd.parent].depth
				end := nd.end
				if end == -1 {
					end = n
				}
				nd.depth = parentDepth + int32(end-nd.start)
			}
			if nd.firstChild == -1 {
				nd.leafCount = 1
				stack = stack[:len(stack)-1]
				continue
			}
			id := f.node
			for c := nd.firstChild; c != -1; c = t.nodes[c].nextSibling {
				t.nodes[c].parent = id
				stack = append(stack, frame{node: c})
			}
			continue
		}
		for c := nd.firstChild; c != -1; c = t.nodes[c].nextSibling {
			nd.leafCount += t.nodes[c].leafCount
		}
		stack = stack[:len(stack)-1]
	}
}

// NumNodes returns the node count (root included).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumLeaves returns the number of leaves, which equals the number of
// suffixes represented.
func (t *Tree) NumLeaves() int { return int(t.nodes[root].leafCount) }

// Repeat describes a repeated subsequence found in the tree: an internal
// node whose subtree holds Count >= 2 leaves; the subsequence is the path
// label from the root, of the given Length.
type Repeat struct {
	Node   int
	Length int
	Count  int
}

// Repeats enumerates internal nodes representing repeats with
// Length >= minLen and Count >= minCount, in no particular order.
func (t *Tree) Repeats(minLen, minCount int) []Repeat {
	if minCount < 2 {
		minCount = 2
	}
	var out []Repeat
	for idx := 1; idx < len(t.nodes); idx++ {
		nd := &t.nodes[idx]
		if nd.firstChild == -1 {
			continue // leaf
		}
		if int(nd.depth) >= minLen && int(nd.leafCount) >= minCount {
			out = append(out, Repeat{Node: idx, Length: int(nd.depth), Count: int(nd.leafCount)})
		}
	}
	return out
}

// Occurrences returns the start positions (in seq) of the repeat rooted at
// the given node, one per descendant leaf, in increasing order is NOT
// guaranteed; callers sort as needed.
func (t *Tree) Occurrences(nodeIdx int) []int {
	n := len(t.seq)
	var occ []int
	var stack []int32
	stack = append(stack, int32(nodeIdx))
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[cur]
		if nd.firstChild == -1 {
			// Leaf: the suffix starts at n - depth; the repeat occurrence
			// starts there too (the repeat is a prefix of the suffix).
			suffixStart := n - int(nd.depth)
			occ = append(occ, suffixStart)
			continue
		}
		for c := nd.firstChild; c != -1; c = t.nodes[c].nextSibling {
			stack = append(stack, c)
		}
	}
	return occ
}

// Label returns the subsequence represented by a node (the path label).
func (t *Tree) Label(nodeIdx int) []uint32 {
	nd := &t.nodes[nodeIdx]
	end := nd.end
	if end == -1 {
		end = len(t.seq)
	}
	// Walk one occurrence instead of composing edges: the repeat is
	// seq[occ : occ+depth] for any occurrence.
	occ := t.firstLeafSuffix(int32(nodeIdx))
	return t.seq[occ : occ+int(nd.depth)]
}

// FirstOccurrence returns one deterministic start position (in seq) of the
// repeat rooted at the given node — the first-child-path leaf's suffix —
// without walking the whole subtree like Occurrences does.
func (t *Tree) FirstOccurrence(nodeIdx int) int {
	return t.firstLeafSuffix(int32(nodeIdx))
}

func (t *Tree) firstLeafSuffix(nodeIdx int32) int {
	cur := nodeIdx
	for t.nodes[cur].firstChild != -1 {
		cur = t.nodes[cur].firstChild
	}
	return len(t.seq) - int(t.nodes[cur].depth)
}

// Benefit evaluates the paper's Figure 2 model: the instruction-count
// saving from outlining a repeat of the given length occurring count times
// (the +1 is the outlined function's return instruction).
func Benefit(length, count int) int {
	original := length * count
	optimized := count + 1 + length
	return original - optimized
}

// ReductionRatio is Figure 2's ratio form of Benefit.
func ReductionRatio(length, count int) float64 {
	original := length * count
	if original == 0 {
		return 0
	}
	return float64(Benefit(length, count)) / float64(original)
}

// Validate performs internal consistency checks (used by tests): every
// occurrence of every repeat matches the node's label.
func (t *Tree) Validate() error {
	for idx := 1; idx < len(t.nodes); idx++ {
		nd := &t.nodes[idx]
		if nd.firstChild == -1 {
			continue
		}
		label := t.Label(idx)
		for _, occ := range t.Occurrences(idx) {
			if occ < 0 || occ+len(label) > len(t.seq) {
				return fmt.Errorf("suffixtree: node %d occurrence %d out of range", idx, occ)
			}
			for k, s := range label {
				if t.seq[occ+k] != s {
					return fmt.Errorf("suffixtree: node %d occurrence %d mismatches label at +%d", idx, occ, k)
				}
			}
		}
	}
	return nil
}
