package suffixtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// sym converts a string to the symbol sequence used in tests; '$', '#'
// etc. participate like any other byte.
func sym(s string) []uint32 {
	out := make([]uint32, len(s))
	for i := range s {
		out[i] = uint32(s[i])
	}
	return out
}

// bruteOccurrences finds all occurrences of needle in hay.
func bruteOccurrences(hay, needle []uint32) []int {
	var occ []int
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for k := range needle {
			if hay[i+k] != needle[k] {
				continue outer
			}
		}
		occ = append(occ, i)
	}
	return occ
}

// TestBananaTree reproduces the paper's Figure 1 example.
func TestBananaTree(t *testing.T) {
	tr := Build(sym("banana$"))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 7 {
		t.Errorf("leaves = %d, want 7 (one per suffix)", tr.NumLeaves())
	}
	// Internal (non-leaf) nodes represent right-maximal repeats, exactly
	// the three non-leaf nodes in Figure 1: "a" x3, "ana" x2, "na" x2.
	// ("an" and "n" repeat too but are always followed by "a", so they
	// live on the edges into "ana"/"na" rather than at nodes.)
	found := map[string]int{}
	for _, r := range tr.Repeats(1, 2) {
		found[string(byteLabel(tr, r.Node))] = r.Count
	}
	want := map[string]int{"a": 3, "ana": 2, "na": 2}
	if !reflect.DeepEqual(found, want) {
		t.Errorf("repeats = %v, want %v", found, want)
	}
	// The rightmost example in §2.1.2: "na" occurs twice, at 2 and 4.
	for _, r := range tr.Repeats(2, 2) {
		if string(byteLabel(tr, r.Node)) == "na" {
			occ := tr.Occurrences(r.Node)
			sort.Ints(occ)
			if !reflect.DeepEqual(occ, []int{2, 4}) {
				t.Errorf("na occurrences = %v", occ)
			}
		}
	}
}

func byteLabel(tr *Tree, node int) []byte {
	lab := tr.Label(node)
	out := make([]byte, len(lab))
	for i, s := range lab {
		out[i] = byte(s)
	}
	return out
}

func TestMississippi(t *testing.T) {
	tr := Build(sym("mississippi$"))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 12 {
		t.Errorf("leaves = %d", tr.NumLeaves())
	}
	// "issi" repeats twice (positions 1 and 4).
	var got []int
	for _, r := range tr.Repeats(4, 2) {
		if string(byteLabel(tr, r.Node)) == "issi" {
			got = tr.Occurrences(r.Node)
			sort.Ints(got)
		}
	}
	if !reflect.DeepEqual(got, []int{1, 4}) {
		t.Errorf("issi occurrences = %v", got)
	}
}

// TestOccurrencesMatchBruteForce cross-checks every repeat's occurrence
// list against a naive scanner on random sequences.
func TestOccurrencesMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := 5 + r.Intn(120)
		alpha := 2 + r.Intn(5)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = uint32(r.Intn(alpha))
		}
		seq = append(seq, 0xFFFFFFFF) // unique terminator
		tr := Build(seq)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.NumLeaves() != len(seq) {
			t.Fatalf("trial %d: leaves = %d, want %d", trial, tr.NumLeaves(), len(seq))
		}
		for _, rep := range tr.Repeats(1, 2) {
			label := tr.Label(rep.Node)
			want := bruteOccurrences(seq, label)
			got := tr.Occurrences(rep.Node)
			sort.Ints(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: occurrences of %v = %v, want %v", trial, label, got, want)
			}
			if rep.Count != len(want) {
				t.Fatalf("trial %d: count of %v = %d, want %d", trial, label, rep.Count, len(want))
			}
		}
	}
}

// TestLongestRepeatMatchesBruteForce compares the longest repeated
// substring length against brute force.
func TestLongestRepeatMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(80)
		seq := make([]uint32, n)
		for i := range seq {
			seq[i] = uint32(r.Intn(3))
		}
		seq = append(seq, 0xFFFFFFFF)

		brute := 0
		for length := 1; length < len(seq); length++ {
			found := false
			for i := 0; i+length <= len(seq) && !found; i++ {
				if len(bruteOccurrences(seq, seq[i:i+length])) >= 2 {
					found = true
				}
			}
			if found {
				brute = length
			} else {
				break
			}
		}
		tree := 0
		tr := Build(seq)
		for _, rep := range tr.Repeats(1, 2) {
			if rep.Length > tree {
				tree = rep.Length
			}
		}
		if tree != brute {
			t.Fatalf("trial %d: longest repeat %d, brute force %d", trial, tree, brute)
		}
	}
}

// TestSeparatorsConfineRepeats: symbols unique to one position can never
// appear inside a repeat, the property §3.3.2 relies on.
func TestSeparatorsConfineRepeats(t *testing.T) {
	// Two identical blocks joined by unique separators.
	var seq []uint32
	block := []uint32{7, 8, 9, 7, 8, 9}
	sep := uint32(1 << 20)
	for i := 0; i < 3; i++ {
		seq = append(seq, block...)
		seq = append(seq, sep+uint32(i))
	}
	tr := Build(seq)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, rep := range tr.Repeats(1, 2) {
		for _, s := range tr.Label(rep.Node) {
			if s >= sep {
				t.Fatalf("separator %#x inside repeat %v", s, tr.Label(rep.Node))
			}
		}
	}
}

func TestBenefitModel(t *testing.T) {
	// Figure 2 with the Table 2 example: a 2-instruction sequence repeated
	// twice saves nothing (2*2=4 vs 2+1+2=5 → benefit -1).
	if got := Benefit(2, 2); got != -1 {
		t.Errorf("Benefit(2,2) = %d, want -1", got)
	}
	// A 2-instruction sequence repeated 4 times: 8 vs 7 → benefit 1.
	if got := Benefit(2, 4); got != 1 {
		t.Errorf("Benefit(2,4) = %d, want 1", got)
	}
	// The paper's hottest pattern: length 2 repeated 1006k times.
	if got := Benefit(2, 1006000); got != 2012000-1006003 {
		t.Errorf("Benefit(2,1006000) = %d", got)
	}
	if r := ReductionRatio(10, 100); r <= 0.88 || r >= 0.90 {
		t.Errorf("ReductionRatio(10,100) = %f", r)
	}
	if ReductionRatio(0, 0) != 0 {
		t.Error("ReductionRatio(0,0) != 0")
	}
}

// TestBenefitProperties: quick-check the model's monotonicity.
func TestBenefitProperties(t *testing.T) {
	f := func(l8, c8 uint8) bool {
		l, c := int(l8%64)+1, int(c8%64)+2
		// Monotone in both arguments.
		return Benefit(l+1, c) >= Benefit(l, c) && Benefit(l, c+1) >= Benefit(l, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTreeScalesLinearly(t *testing.T) {
	// A structural sanity bound: node count <= 2n.
	r := rand.New(rand.NewSource(2))
	n := 20000
	seq := make([]uint32, n)
	for i := range seq {
		seq[i] = uint32(r.Intn(16))
	}
	seq = append(seq, 0xFFFFFFFF)
	tr := Build(seq)
	if tr.NumNodes() > 2*len(seq)+2 {
		t.Errorf("nodes = %d for n = %d", tr.NumNodes(), len(seq))
	}
	if tr.NumLeaves() != len(seq) {
		t.Errorf("leaves = %d", tr.NumLeaves())
	}
}
