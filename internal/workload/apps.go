package workload

import (
	"math/rand"

	"repro/internal/dex"
)

// The six applications of the paper's test set (§4.1, Table 3), scaled
// ~1:220 from their baseline OAT text sizes (Table 4: Toutiao 357M,
// Taobao 225M, Fanqie 264M, Meituan 247M, Kuaishou 612M, WeChat 388M).
// Method counts are proportional to those sizes, so inter-app ratios are
// preserved even though absolute sizes are laptop-scale.
var appSpecs = []struct {
	name    string
	methods int
	seed    int64
}{
	{"Toutiao", 1600, 101},
	{"Taobao", 1010, 102},
	{"Fanqie", 1190, 103},
	{"Meituan", 1110, 104},
	{"Kuaishou", 2750, 105},
	{"Wechat", 1750, 106},
}

// Apps returns the six benchmark app profiles at the given scale factor
// (1.0 = full ~1:220 reproduction scale; smaller values shrink method
// counts proportionally for quick runs). Scale values <= 0 default to 1.
func Apps(scale float64) []Profile {
	if scale <= 0 {
		scale = 1
	}
	out := make([]Profile, 0, len(appSpecs))
	for _, s := range appSpecs {
		n := int(float64(s.methods) * scale)
		if n < 20 {
			n = 20
		}
		out = append(out, Profile{
			Name:    s.name,
			Seed:    s.seed,
			Methods: n,
			// Rates common to the suite; chosen so the per-method pattern
			// frequencies track the paper's Figure 4 measurements.
			NativeFrac: 0.03,
			SwitchFrac: 0.05,
			HotFrac:    0.03,
		})
	}
	return out
}

// AppByName returns the profile with the given name at the given scale.
// Beyond the six paper apps it also resolves "Obfuscated", the
// adversarial high-redundancy variant (see update.go), which is kept out
// of Apps so the experiment tables stay the paper's test set.
func AppByName(name string, scale float64) (Profile, bool) {
	for _, p := range Apps(scale) {
		if p.Name == name {
			return p, true
		}
	}
	if p := obfuscatedProfile(scale); p.Name == name {
		return p, true
	}
	return Profile{}, false
}

// Run is one scripted operation: invoke an entry method with arguments
// (one step of the uiautomator-script stand-in).
type Run struct {
	Entry dex.MethodID
	Args  [2]int64
}

// Script produces the scripted operation sequence the memory and
// performance experiments execute (the uiautomator stand-in, §4.3/§4.5):
// `rounds` passes over the app's activities with varying arguments.
func Script(man *Manifest, rounds int, seed int64) []Run {
	r := rand.New(rand.NewSource(seed))
	var script []Run
	for round := 0; round < rounds; round++ {
		for _, d := range man.Drivers {
			script = append(script, Run{
				Entry: d,
				Args:  [2]int64{int64(r.Intn(256)), int64(r.Intn(12))},
			})
		}
	}
	return script
}

// DriverFor is a convenience for examples: the app's first activity.
func DriverFor(man *Manifest) dex.MethodID { return man.Drivers[0] }
