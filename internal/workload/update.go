// App updates and adversarial variants. Real serving traffic is not six
// static apps: stores ship frequent updates that change a few percent of
// an app's methods, and obfuscated apps arrive with far more repetition
// than hand-written code. Update models the first; the "Obfuscated"
// profile (reachable through AppByName, excluded from the paper's
// six-app Apps set) models the second.
//
// Update semantics: version V of a profile regenerates roughly
// ChangedFrac of its methods per version step, chosen deterministically
// per (seed, method, step), and leaves every other method byte-identical
// to the previous version. That identity is what makes update traffic
// interesting to serve: a warm content-addressed cache hits on the
// unchanged majority and recompiles only the delta. The plain profile
// (Version == 0, ChangedFrac == 0) keeps the original single-stream
// generator, so existing goldens and experiments are untouched; delta
// mode switches to per-method seeded streams, which is what makes the
// cross-version identity possible at all.

package workload

import (
	"math/rand"

	"repro/internal/dex"
)

// Update returns p as version `version` of the app with `changed` of its
// methods regenerated per version step.
func Update(p Profile, version int, changed float64) Profile {
	p.Version = version
	p.ChangedFrac = changed
	return p
}

// delta reports whether the profile uses per-method generation streams.
func (p Profile) delta() bool { return p.Version > 0 || p.ChangedFrac > 0 }

// mix hashes a value sequence into an RNG seed (FNV-1a over the bytes).
func mix(vals ...int64) int64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime
		}
	}
	return int64(h &^ (1 << 63))
}

// revision returns the last version step at which the method changed, 0
// if it still carries its launch-version body. Each step redraws its own
// hash, so successive versions accumulate independent ~ChangedFrac
// deltas, like successive app releases do.
func revision(p Profile, id dex.MethodID) int {
	rev := 0
	for u := 1; u <= p.Version; u++ {
		x := float64(mix(p.Seed, int64(id), int64(u))%(1<<53)) / (1 << 53)
		if x < p.ChangedFrac {
			rev = u
		}
	}
	return rev
}

// methodGen returns the generator one method's body is drawn from. In
// delta mode every method owns a stream seeded by (app, method,
// revision): a method whose revision did not change between versions
// replays the identical stream and produces the identical body.
func (g *generator) methodGen(id dex.MethodID) *generator {
	if !g.p.delta() {
		return g
	}
	r := rand.New(rand.NewSource(mix(g.p.Seed, int64(id), int64(revision(g.p, id)))))
	return &generator{
		p: g.p, r: r, motifs: g.motifs,
		zipf: rand.NewZipf(r, zipfS, zipfV, uint64(g.p.MotifPool-1)),
	}
}

// driverGen is methodGen's analogue for entry methods: seeded by the
// driver ordinal only, so a driver's coverage sample is stable across
// versions (drivers are the app's navigation, which updates rarely).
func (g *generator) driverGen(d int) *generator {
	if !g.p.delta() {
		return g
	}
	r := rand.New(rand.NewSource(mix(g.p.Seed, -1, int64(d))))
	return &generator{p: g.p, r: r, motifs: g.motifs}
}

// obfuscatedProfile is the adversarial high-redundancy variant:
// obfuscators expand call sites and control flow through a small set of
// templates, so the same instruction sequences recur far more often than
// in hand-written code — a tiny motif pool drawn heavily, long motifs,
// and little unique filler between them. It stresses the outliner's
// candidate explosion (many overlapping repeats) rather than its
// discovery (which this makes easy).
func obfuscatedProfile(scale float64) Profile {
	if scale <= 0 {
		scale = 1
	}
	n := int(1200 * scale)
	if n < 20 {
		n = 20
	}
	return Profile{
		Name:    "Obfuscated",
		Seed:    107,
		Methods: n,

		NativeFrac: 0.01,
		SwitchFrac: 0.02,
		HotFrac:    0.02,

		MotifPool:      24,
		MotifLen:       8,
		MotifsPerM:     9,
		CallSitesPerM:  6,
		FillerPerMotif: 5,
	}
}
