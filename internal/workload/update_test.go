package workload

import (
	"fmt"
	"testing"

	"repro/internal/dex"
)

// sameCode reports whether two methods have identical bodies.
func sameCode(a, b *dex.Method) bool {
	if a.Native != b.Native || len(a.Code) != len(b.Code) {
		return false
	}
	for i := range a.Code {
		x, y := a.Code[i], b.Code[i]
		if x.Op != y.Op || x.A != y.A || x.B != y.B || x.C != y.C ||
			x.Lit != y.Lit || x.Method != y.Method || x.Native != y.Native ||
			x.Target != y.Target || len(x.Targets) != len(y.Targets) {
			return false
		}
		for j := range x.Targets {
			if x.Targets[j] != y.Targets[j] {
				return false
			}
		}
	}
	return true
}

// TestUpdateDelta: version V+1 regenerates roughly ChangedFrac of the
// methods and leaves every other method byte-identical — the property
// the serving cache's partial warm hits depend on.
func TestUpdateDelta(t *testing.T) {
	base, ok := AppByName("Taobao", 0.1)
	if !ok {
		t.Fatal("no Taobao profile")
	}
	const delta = 0.2
	v1, _, err := Generate(Update(base, 1, delta))
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := Generate(Update(base, 2, delta))
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Methods) != len(v2.Methods) {
		t.Fatalf("method count changed across versions: %d vs %d",
			len(v1.Methods), len(v2.Methods))
	}
	changed := 0
	for i := numDrivers; i < len(v1.Methods); i++ {
		if !sameCode(v1.Methods[i], v2.Methods[i]) {
			changed++
		}
	}
	regular := len(v1.Methods) - numDrivers
	frac := float64(changed) / float64(regular)
	// One version step redraws ~delta of the methods; allow generous
	// sampling slack either way, but reject "everything changed" (the
	// single-stream cascade bug this mode exists to avoid) and "nothing
	// changed".
	if frac < delta/3 || frac > 2*delta {
		t.Errorf("changed fraction %.3f (%d/%d), want ~%.2f", frac, changed, regular, delta)
	}
	for _, app := range []*dex.App{v1, v2} {
		if err := app.Validate(); err != nil {
			t.Fatalf("update app invalid: %v", err)
		}
	}
}

// TestUpdateDeterministic: the same (version, delta) regenerates the
// same app.
func TestUpdateDeterministic(t *testing.T) {
	base, _ := AppByName("Fanqie", 0.05)
	a, _, err := Generate(Update(base, 3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(Update(base, 3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Methods {
		if !sameCode(a.Methods[i], b.Methods[i]) {
			t.Fatalf("method %d differs between identical generations", i)
		}
	}
}

// windowDupFrac measures dex-level redundancy: the fraction of 4-insn
// windows whose rendering occurs more than once across the app.
func windowDupFrac(app *dex.App) float64 {
	const w = 4
	seen := map[string]int{}
	total := 0
	for _, m := range app.Methods {
		for i := 0; i+w <= len(m.Code); i++ {
			key := fmt.Sprint(m.Code[i : i+w])
			seen[key]++
			total++
		}
	}
	dup := 0
	for _, c := range seen {
		if c > 1 {
			dup += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dup) / float64(total)
}

// TestObfuscatedProfile: the adversarial profile resolves by name, stays
// out of the paper's six-app set, and is measurably more redundant than
// a regular app at the same scale.
func TestObfuscatedProfile(t *testing.T) {
	for _, p := range Apps(0.1) {
		if p.Name == "Obfuscated" {
			t.Fatal("Obfuscated leaked into the paper app set")
		}
	}
	op, ok := AppByName("Obfuscated", 0.1)
	if !ok {
		t.Fatal("AppByName does not resolve Obfuscated")
	}
	obf, _, err := Generate(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := obf.Validate(); err != nil {
		t.Fatalf("obfuscated app invalid: %v", err)
	}
	tp, _ := AppByName("Taobao", 0.1)
	reg, _, err := Generate(tp)
	if err != nil {
		t.Fatal(err)
	}
	of, rf := windowDupFrac(obf), windowDupFrac(reg)
	if of <= rf {
		t.Errorf("obfuscated redundancy %.3f not above regular %.3f", of, rf)
	}
}
