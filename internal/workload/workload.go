// Package workload generates the synthetic Android applications the
// experiments run on, standing in for the six commercial OPPO App Market
// apps the paper measures (Toutiao, Taobao, Fanqie/Tomato Novel, Meituan,
// Kuaishou, WeChat), which are not redistributable.
//
// What the generator reproduces is the *redundancy structure* that Calibro
// exploits, not app functionality:
//
//   - a shared pool of code motifs drawn Zipf-style across methods, so that
//     short instruction sequences repeat heavily (Observation 1 and 2);
//   - per-method compilation templates (frame setup, allocation, call
//     sites) that repeat ART-specific patterns at rates matching the
//     paper's Figure 4 measurements (~6 Java call sites, ~1 stack check,
//     ~1-2 runtime-entrypoint calls per method);
//   - arg-gated call sites and hot loop kernels so a small set of methods
//     dominates execution time (the premise of hot-function filtering);
//   - JNI methods and packed-switch methods at realistic rates, exercising
//     the outliner's exclusion logic.
//
// Profiles are scaled ~1:220 from the paper's baseline OAT text sizes;
// ratios between apps are preserved.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dex"
)

// Register conventions inside generated methods (NumRegs=12, NumIns=2):
//
//	v0..v2  scratch written by motifs and filler
//	v3      object reference
//	v4      array reference
//	v5      constant mask (31)
//	v6      loop counter
//	v10,v11 arguments
const (
	numRegs = 12
	numIns  = 2
	regObj  = 3
	regArr  = 4
	regMask = 5
	regCnt  = 6
	regArg0 = 10
	regArg1 = 11
)

// Profile parameterizes one synthetic application.
type Profile struct {
	Name    string
	Seed    int64
	Methods int // regular methods (drivers are extra)

	NativeFrac float64 // fraction compiled as JNI stubs
	SwitchFrac float64 // fraction containing a packed-switch
	HotFrac    float64 // fraction with heavy loop kernels

	MotifPool      int     // distinct motifs shared across the app
	MotifLen       int     // minimum motif length (default 3)
	MotifsPerM     int     // average motif instances per method
	CallSitesPerM  int     // average arg-gated invoke sites per method
	FillerPerMotif int     // average unique filler instructions per motif slot
	HotLoopIters   int     // iterations of a hot method's kernel loop
	WarmLoopIters  int     // iterations of an ordinary method's loop
	DriverCoverage float64 // fraction of methods each driver calls

	// Version and ChangedFrac select app-update delta mode (see
	// update.go): version V regenerates ~ChangedFrac of the methods per
	// version step and leaves the rest byte-identical to version V-1.
	Version     int
	ChangedFrac float64
}

// Manifest records generation-time ground truth used by experiments.
type Manifest struct {
	Drivers []dex.MethodID // entry methods ("activities")
	Hot     []dex.MethodID // methods given heavy kernels
}

// numDrivers is the count of entry "activity" methods per app.
const numDrivers = 3

// Generate builds the application.
func Generate(p Profile) (*dex.App, *Manifest, error) {
	if p.Methods <= 0 {
		return nil, nil, fmt.Errorf("workload: profile %q has no methods", p.Name)
	}
	p = withDefaults(p)
	r := rand.New(rand.NewSource(p.Seed))
	g := &generator{p: p, r: r}
	g.buildMotifs()

	// Multidex layout like real app bundles: methods are spread over
	// classes (~40 methods each) and classes over dex files (~16 classes
	// each, i.e. ~650 methods per classesN.dex).
	app := &dex.App{Name: p.Name}
	const methodsPerClass, classesPerFile = 40, 16
	var curFile *dex.File
	var curClass *dex.Class
	nextClass := func() {
		if curFile == nil || len(curFile.Classes) == classesPerFile {
			name := "classes.dex"
			if len(app.Files) > 0 {
				name = fmt.Sprintf("classes%d.dex", len(app.Files)+1)
			}
			curFile = &dex.File{Name: name}
			app.Files = append(app.Files, curFile)
		}
		curClass = &dex.Class{Name: fmt.Sprintf("L%s/C%03d", p.Name, totalClasses(app))}
		curFile.Classes = append(curFile.Classes, curClass)
	}
	addMethod := func(m *dex.Method) {
		if curClass == nil || len(curClass.Methods) == methodsPerClass {
			nextClass()
		}
		m.Class = curClass.Name
		app.AddMethod(curClass, m)
	}

	man := &Manifest{}
	// Reserve driver slots first so they get the low IDs.
	for d := 0; d < numDrivers; d++ {
		m := &dex.Method{Name: fmt.Sprintf("activity%d", d),
			NumRegs: numRegs, NumIns: numIns}
		addMethod(m)
		man.Drivers = append(man.Drivers, m.ID)
	}
	// Regular methods. In delta mode each method draws from its own
	// (app, method, revision)-seeded stream instead of the shared one, so
	// an update regenerates exactly the methods whose revision moved.
	first := dex.MethodID(numDrivers)
	n := dex.MethodID(numDrivers + p.Methods)
	for id := first; id < n; id++ {
		gm := g.methodGen(id)
		hot := gm.r.Float64() < p.HotFrac
		m := &dex.Method{Name: fmt.Sprintf("m%04d", id),
			NumRegs: numRegs, NumIns: numIns}
		switch {
		case gm.r.Float64() < p.NativeFrac:
			m.Native = true
		default:
			gm.methodBody(m, id, n, hot)
			if hot {
				man.Hot = append(man.Hot, id)
			}
		}
		addMethod(m)
	}
	// Driver bodies: call every hot method plus a sample of the rest.
	for d := 0; d < numDrivers; d++ {
		g.driverGen(d).driverBody(app.Methods[d], man, first, n)
	}
	if err := app.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: generated app invalid: %w", err)
	}
	return app, man, nil
}

func withDefaults(p Profile) Profile {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.MotifPool, 110)
	def(&p.MotifsPerM, 4)
	def(&p.CallSitesPerM, 4)
	def(&p.FillerPerMotif, 30)
	def(&p.HotLoopIters, 1200)
	def(&p.WarmLoopIters, 2)
	if p.DriverCoverage == 0 {
		p.DriverCoverage = 0.30
	}
	return p
}

type generator struct {
	p      Profile
	r      *rand.Rand
	motifs [][]dex.Insn
	zipf   *rand.Zipf
}

// Zipf shape of motif popularity, shared by the base generator and the
// per-method delta streams so both draw from the same distribution.
const (
	zipfS = 1.4
	zipfV = 1.0
)

// buildMotifs creates the shared motif pool. Motifs are straight-line and
// write only scratch registers, so any motif can be dropped anywhere in a
// method body, including loop bodies.
func (g *generator) buildMotifs() {
	g.zipf = rand.NewZipf(g.r, zipfS, zipfV, uint64(g.p.MotifPool-1))
	for i := 0; i < g.p.MotifPool; i++ {
		g.motifs = append(g.motifs, g.randomMotif())
	}
}

func (g *generator) randomMotif() []dex.Insn {
	r := g.r
	scratch := func() uint8 { return uint8(r.Intn(3)) }
	min := 3
	if g.p.MotifLen > 0 {
		min = g.p.MotifLen
	}
	n := min + r.Intn(8)
	var code []dex.Insn
	for len(code) < n {
		switch r.Intn(10) {
		case 0:
			code = append(code, dex.Insn{Op: dex.OpConst, A: scratch(), Lit: int64(r.Intn(256))})
		case 1:
			code = append(code, dex.Insn{Op: dex.OpMove, A: scratch(), B: scratch()})
		case 2, 3, 4:
			ops := []dex.Opcode{dex.OpAdd, dex.OpSub, dex.OpAnd, dex.OpOr, dex.OpXor, dex.OpMul, dex.OpShl, dex.OpShr}
			code = append(code, dex.Insn{Op: ops[r.Intn(len(ops))], A: scratch(), B: scratch(), C: scratch()})
		case 5:
			code = append(code, dex.Insn{Op: dex.OpAddLit, A: scratch(), B: scratch(), Lit: int64(r.Intn(64))})
		case 6:
			code = append(code, dex.Insn{Op: dex.OpIGet, A: scratch(), B: regObj, Lit: int64(r.Intn(8))})
		case 7:
			code = append(code, dex.Insn{Op: dex.OpIPut, A: scratch(), B: regObj, Lit: int64(r.Intn(8))})
		case 8:
			code = append(code,
				dex.Insn{Op: dex.OpAnd, A: 2, B: scratch(), C: regMask},
				dex.Insn{Op: dex.OpAGet, A: scratch(), B: regArr, C: 2})
		case 9:
			code = append(code,
				dex.Insn{Op: dex.OpAnd, A: 2, B: scratch(), C: regMask},
				dex.Insn{Op: dex.OpAPut, A: scratch(), B: regArr, C: 2})
		}
	}
	return code
}

// emitMotif appends a shared motif instance.
func (g *generator) emitMotif(code []dex.Insn) []dex.Insn {
	idx := int(g.zipf.Uint64())
	return append(code, g.motifs[idx]...)
}

// emitFiller appends method-unique straight-line code: constants and
// immediates drawn from wide ranges, so the generated words almost never
// coincide across methods. Real application logic is mostly unique; the
// filler fraction is the knob that calibrates overall binary redundancy to
// the paper's ~25% estimate (Table 1).
func (g *generator) emitFiller(code []dex.Insn, n int) []dex.Insn {
	r := g.r
	scratch := func() uint8 { return uint8(r.Intn(3)) }
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			code = append(code, dex.Insn{Op: dex.OpConst, A: scratch(), Lit: int64(r.Intn(1 << 16))})
		case 1:
			code = append(code, dex.Insn{Op: dex.OpAddLit, A: scratch(), B: scratch(), Lit: int64(r.Intn(4096))})
		case 2:
			code = append(code, dex.Insn{Op: dex.OpAddLit, A: scratch(), B: scratch(), Lit: -int64(r.Intn(4096))})
		case 3:
			code = append(code, dex.Insn{Op: dex.OpIGet, A: scratch(), B: regObj, Lit: int64(r.Intn(8))},
				dex.Insn{Op: dex.OpConst, A: scratch(), Lit: int64(r.Intn(1 << 16))})
		}
	}
	return code
}

// mustNoBranches guards the loop-wrapping invariant: motifs are
// straight-line by construction, so dropping one into a counted loop can
// never create a branch whose target would need adjusting.
func mustNoBranches(motif []dex.Insn) {
	for _, in := range motif {
		if in.Op.IsBranch() {
			panic("workload: motif contains a branch")
		}
	}
}

// methodBody generates a regular method.
func (g *generator) methodBody(m *dex.Method, id, n dex.MethodID, hot bool) {
	r := g.r
	var code []dex.Insn

	// Per-method setup: mask, array, object, scratch initialization. The
	// shapes repeat across methods (the ART-template effect) but the
	// constants vary, as they do between real methods.
	code = append(code,
		dex.Insn{Op: dex.OpConst, A: regMask, Lit: 31},
		dex.Insn{Op: dex.OpConst, A: 0, Lit: int64(32 + r.Intn(32))},
		dex.Insn{Op: dex.OpNewArray, A: regArr, B: 0},
		dex.Insn{Op: dex.OpNewInstance, A: regObj, Lit: int64(8 + r.Intn(8))},
	)
	if r.Intn(2) == 0 {
		code = append(code, dex.Insn{Op: dex.OpMove, A: 0, B: regArg0})
	} else {
		code = append(code, dex.Insn{Op: dex.OpConst, A: 0, Lit: int64(r.Intn(1 << 16))})
	}
	if r.Intn(2) == 0 {
		code = append(code, dex.Insn{Op: dex.OpMove, A: 1, B: regArg1})
	} else {
		code = append(code, dex.Insn{Op: dex.OpConst, A: 1, Lit: int64(r.Intn(1 << 16))})
	}
	code = append(code,
		dex.Insn{Op: dex.OpConst, A: 2, Lit: int64(r.Intn(1 << 16))},
		dex.Insn{Op: dex.OpConst, A: 7, Lit: int64(r.Intn(1 << 16))},
	)

	// A fraction of methods own an "asset buffer": a larger array they
	// fill on entry, the stand-in for the bitmaps/resources real apps keep
	// resident. This puts data pages in the resident set so the Table 5
	// memory experiment sees a realistic code/data balance.
	if r.Float64() < 0.08 {
		size := int64(1024 + r.Intn(1024))
		code = append(code,
			dex.Insn{Op: dex.OpConst, A: 0, Lit: size},
			dex.Insn{Op: dex.OpNewArray, A: regArr, B: 0},
			dex.Insn{Op: dex.OpConst, A: regCnt, Lit: 0},
		)
		loopTop := int32(len(code))
		code = append(code,
			dex.Insn{Op: dex.OpAPut, A: 2, B: regArr, C: regCnt},
			dex.Insn{Op: dex.OpAddLit, A: regCnt, B: regCnt, Lit: 1},
			dex.Insn{Op: dex.OpIfLt, A: regCnt, B: 0, Target: loopTop},
		)
		// Restore v0 for the rest of the body.
		code = append(code, dex.Insn{Op: dex.OpConst, A: 0, Lit: int64(r.Intn(1 << 16))})
	}

	// Optional packed-switch on the argument (marks the method
	// indirect-jump and unoutlinable).
	if r.Float64() < g.p.SwitchFrac {
		code = g.emitSwitch(code)
	}

	// Motif instances, some wrapped in loops.
	if hot {
		// Hot kernel: a heavy counted loop whose body is mostly unique
		// code (real hot loops are specialized) with one shared motif —
		// the piece LTBO would outline, and the piece hot-function
		// filtering protects (§3.4.2).
		iters := g.p.HotLoopIters/2 + r.Intn(g.p.HotLoopIters)
		code = append(code, dex.Insn{Op: dex.OpConst, A: regCnt, Lit: int64(iters)})
		loopTop := int32(len(code))
		code = g.emitFiller(code, 60+r.Intn(90))
		motif := g.motifs[int(g.zipf.Uint64())]
		mustNoBranches(motif)
		code = append(code, motif...)
		code = g.emitFiller(code, 30+r.Intn(60))
		code = append(code,
			dex.Insn{Op: dex.OpAddLit, A: regCnt, B: regCnt, Lit: -1},
			dex.Insn{Op: dex.OpIfNez, A: regCnt, Target: loopTop},
		)
	}
	motifCount := 1 + r.Intn(2*g.p.MotifsPerM)
	loopsLeft := 1
	for k := 0; k < motifCount; k++ {
		if loopsLeft > 0 && r.Float64() < 0.25 {
			loopsLeft--
			iters := 1 + r.Intn(g.p.WarmLoopIters)
			code = append(code, dex.Insn{Op: dex.OpConst, A: regCnt, Lit: int64(iters)})
			loopTop := int32(len(code))
			motif := g.motifs[int(g.zipf.Uint64())]
			mustNoBranches(motif)
			code = append(code, motif...)
			code = append(code,
				dex.Insn{Op: dex.OpAddLit, A: regCnt, B: regCnt, Lit: -1},
				dex.Insn{Op: dex.OpIfNez, A: regCnt, Target: loopTop},
			)
			continue
		}
		code = g.emitMotif(code)
		code = g.emitFiller(code, r.Intn(2*g.p.FillerPerMotif+1))
	}

	// Arg-gated call sites: statically frequent (the Figure 4a pattern)
	// but mostly skipped at run time, like real call sites. Argument and
	// result registers vary per site, as they do in real code — only the
	// ART calling pattern itself repeats verbatim.
	sites := 1 + r.Intn(2*g.p.CallSitesPerM)
	for s := 0; s < sites && id+1 < n; s++ {
		callee := id + 1 + dex.MethodID(r.Intn(int(n-id-1)))
		gate := int64(r.Intn(10))
		if r.Intn(3) != 0 {
			gate = int64(r.Intn(256)) // most guards never fire at run time
		}
		gateReg := uint8(regArg1)
		if r.Intn(2) == 0 {
			gateReg = uint8(r.Intn(3)) // junk-valued scratch: rarely fires
		}
		argC := uint8(r.Intn(3))
		if r.Intn(3) == 0 {
			argC = regArg1
		}
		// Unique argument-preparation code between guard and call, like
		// real call sites computing their arguments.
		prep := g.emitFiller(nil, r.Intn(4))
		code = append(code,
			dex.Insn{Op: dex.OpConst, A: 7, Lit: gate},
			dex.Insn{Op: dex.OpIfNe, A: gateReg, B: 7, Target: int32(len(code) + 3 + len(prep))},
		)
		code = append(code, prep...)
		code = append(code,
			dex.Insn{Op: dex.OpInvoke, A: uint8(r.Intn(3)), Method: callee, B: uint8(r.Intn(3)), C: argC},
		)
	}

	// Occasional direct runtime-entrypoint use beyond allocation.
	if r.Intn(3) == 0 {
		code = append(code, dex.Insn{Op: dex.OpInvokeNative, A: 3, Native: dex.NativeGCSafepoint, B: 0})
	}

	code = append(code, dex.Insn{Op: dex.OpReturn, A: 0})
	m.Code = code
}

// emitSwitch appends a packed-switch diamond over the masked argument.
func (g *generator) emitSwitch(code []dex.Insn) []dex.Insn {
	r := g.r
	arms := 3 + r.Intn(4)
	// Layout: and; switch; default; goto end; arm0; goto end; ... armN-1; (end)
	code = append(code, dex.Insn{Op: dex.OpAnd, A: 7, B: regArg0, C: regMask})
	swAt := len(code)
	code = append(code, dex.Insn{Op: dex.OpPackedSwitch, A: 7}) // targets below
	end := len(code) + 1 /*default*/ + 1 /*goto*/ + arms*2
	targets := make([]int32, arms)
	code = append(code,
		dex.Insn{Op: dex.OpConst, A: 0, Lit: -1},
		dex.Insn{Op: dex.OpGoto, Target: int32(end)},
	)
	for a := 0; a < arms; a++ {
		targets[a] = int32(len(code))
		code = append(code,
			dex.Insn{Op: dex.OpAddLit, A: 0, B: regArg0, Lit: int64(a * 3)},
			dex.Insn{Op: dex.OpGoto, Target: int32(end)},
		)
	}
	code[swAt].Targets = targets
	// `end` equals len(code) here; the caller appends more instructions,
	// so the gotos land on whatever follows.
	if end != len(code) {
		panic("workload: switch layout miscomputed")
	}
	return code
}

// driverBody fills an entry method: call every hot method once, then a
// deterministic sample of the rest, logging each result.
func (g *generator) driverBody(m *dex.Method, man *Manifest, first, n dex.MethodID) {
	r := g.r
	var code []dex.Insn
	code = append(code,
		dex.Insn{Op: dex.OpMove, A: 0, B: regArg0},
		dex.Insn{Op: dex.OpMove, A: 1, B: regArg1},
	)
	call := func(id dex.MethodID) {
		code = append(code,
			dex.Insn{Op: dex.OpInvoke, A: 0, Method: id, B: 0, C: 1},
			dex.Insn{Op: dex.OpInvokeNative, A: 2, Native: dex.NativeLogValue, B: 0},
		)
	}
	for _, id := range man.Hot {
		call(id)
	}
	for id := first; id < n; id++ {
		if r.Float64() < g.p.DriverCoverage {
			call(id)
		}
	}
	code = append(code, dex.Insn{Op: dex.OpReturn, A: 0})
	m.Code = code
}

// totalClasses counts classes across files.
func totalClasses(app *dex.App) int {
	n := 0
	for _, f := range app.Files {
		n += len(f.Classes)
	}
	return n
}
