package workload

import (
	"testing"

	"repro/internal/dex"
)

func TestGenerateValidApps(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		app, man, err := Generate(Profile{
			Name: "g", Seed: seed, Methods: 80,
			NativeFrac: 0.1, SwitchFrac: 0.1, HotFrac: 0.05,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := app.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(man.Drivers) != numDrivers {
			t.Errorf("drivers = %d", len(man.Drivers))
		}
		s := app.CollectStats()
		if s.Methods != 80+numDrivers {
			t.Errorf("methods = %d", s.Methods)
		}
		if s.Native == 0 {
			t.Errorf("seed %d: no native methods", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "d", Seed: 7, Methods: 50, SwitchFrac: 0.1}
	a1, m1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	a2, m2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Methods) != len(a2.Methods) || len(m1.Hot) != len(m2.Hot) {
		t.Fatal("shape differs between identical generations")
	}
	for i := range a1.Methods {
		c1, c2 := a1.Methods[i].Code, a2.Methods[i].Code
		if len(c1) != len(c2) {
			t.Fatalf("method %d differs", i)
		}
		for j := range c1 {
			if c1[j].Op != c2[j].Op || c1[j].Lit != c2[j].Lit {
				t.Fatalf("method %d insn %d differs", i, j)
			}
		}
	}
}

func TestCallGraphIsForwardOnly(t *testing.T) {
	app, _, err := Generate(Profile{Name: "f", Seed: 3, Methods: 120, SwitchFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for id, m := range app.Methods {
		if id < numDrivers {
			continue // drivers call everywhere forward of themselves
		}
		for _, in := range m.Code {
			if in.Op == dex.OpInvoke && int(in.Method) <= id {
				t.Fatalf("m%d calls m%d (not forward)", id, in.Method)
			}
		}
	}
}

func TestHotMethodsMarked(t *testing.T) {
	_, man, err := Generate(Profile{Name: "h", Seed: 5, Methods: 300, HotFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Hot) < 5 || len(man.Hot) > 40 {
		t.Errorf("hot methods = %d for HotFrac 0.05 of 300", len(man.Hot))
	}
}

func TestApps(t *testing.T) {
	apps := Apps(1.0)
	if len(apps) != 6 {
		t.Fatalf("apps = %d", len(apps))
	}
	names := map[string]int{}
	for _, p := range apps {
		names[p.Name] = p.Methods
	}
	// Kuaishou is the largest, Taobao the smallest, per Table 4 baselines.
	for name := range names {
		if names["Kuaishou"] < names[name] || names["Taobao"] > names[name] {
			t.Errorf("size ordering violated at %s: %v", name, names)
		}
	}
	small := Apps(0.05)
	if small[0].Methods >= apps[0].Methods {
		t.Errorf("scaling inert")
	}
	if _, ok := AppByName("Wechat", 0.1); !ok {
		t.Error("AppByName failed")
	}
	if _, ok := AppByName("Nope", 0.1); ok {
		t.Error("AppByName found a ghost")
	}
	if p := Apps(-1); p[0].Methods != apps[0].Methods {
		t.Error("negative scale not defaulted")
	}
}

func TestScript(t *testing.T) {
	_, man, err := Generate(Profile{Name: "s", Seed: 9, Methods: 30})
	if err != nil {
		t.Fatal(err)
	}
	script := Script(man, 20, 1)
	if len(script) != 20*numDrivers {
		t.Fatalf("script length = %d", len(script))
	}
	s2 := Script(man, 20, 1)
	for i := range script {
		if script[i] != s2[i] {
			t.Fatal("script not deterministic")
		}
	}
	if DriverFor(man) != man.Drivers[0] {
		t.Error("DriverFor mismatch")
	}
}

func TestGenerateRejectsEmpty(t *testing.T) {
	if _, _, err := Generate(Profile{Name: "e"}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestMultidexLayout(t *testing.T) {
	app, _, err := Generate(Profile{Name: "md", Seed: 2, Methods: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Files) < 2 {
		t.Fatalf("expected multidex, got %d file(s)", len(app.Files))
	}
	total := 0
	for _, f := range app.Files {
		if len(f.Classes) > 16 {
			t.Errorf("file %s has %d classes", f.Name, len(f.Classes))
		}
		for _, c := range f.Classes {
			if len(c.Methods) > 40 {
				t.Errorf("class %s has %d methods", c.Name, len(c.Methods))
			}
			total += len(c.Methods)
		}
	}
	if total != app.NumMethods() {
		t.Errorf("class membership %d != method table %d", total, app.NumMethods())
	}
	if app.Files[0].Name != "classes.dex" || app.Files[1].Name != "classes2.dex" {
		t.Errorf("file names: %s, %s", app.Files[0].Name, app.Files[1].Name)
	}
}
