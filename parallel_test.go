package calibro

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// wechatApp generates the WeChat profile at a small scale: large enough to
// exercise CTO thunks, multi-tree outlining, and slow paths, small enough
// to build repeatedly.
func wechatApp(t *testing.T) *App {
	t.Helper()
	prof, ok := AppProfileByName("Wechat", 0.05)
	if !ok {
		t.Fatal("Wechat profile missing")
	}
	app, _, err := GenerateApp(prof)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestBuildDeterministicAcrossWorkers pins the -j contract: the worker
// count changes scheduling only, never output. A full CTO+LTBO+PlOpti
// build of the WeChat app must serialize to byte-identical images at
// every pool width, with the in-build verifier on so the parallel lint
// path runs too.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	app := wechatApp(t)
	images := map[int][]byte{}
	for _, j := range []int{1, 3, 8} {
		cfg := CTOLTBOPl(8)
		cfg.VerifyImage = true
		cfg.Workers = j
		res, err := Build(app, cfg)
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		if res.Workers != j {
			t.Errorf("-j %d: Result.Workers = %d", j, res.Workers)
		}
		data, err := MarshalImage(res.Image)
		if err != nil {
			t.Fatalf("-j %d: %v", j, err)
		}
		images[j] = data
	}
	for _, j := range []int{3, 8} {
		if !bytes.Equal(images[1], images[j]) {
			t.Errorf("image built at -j %d differs from -j 1 (%d vs %d bytes)",
				j, len(images[j]), len(images[1]))
		}
	}
}

// TestConcurrentBuildsShareScratch runs several full builds at once, each
// with a wide worker pool, sharded detection, and a live tracer. The
// compile and cache-hashing hot paths hand out scratch buffers from
// package-level sync.Pools, so concurrent builds recycle each other's
// buffers — this test is the race-detector surface for that sharing (and
// for the striped tracer and batched task pickup underneath), and pins
// that every concurrent build still produces the same bytes as a serial
// single-worker build.
func TestConcurrentBuildsShareScratch(t *testing.T) {
	app := wechatApp(t)

	ref := CTOLTBOPl(8)
	ref.Workers = 1
	ref.DetectShards = 4
	refRes, err := Build(app, ref)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalImage(refRes.Image)
	if err != nil {
		t.Fatal(err)
	}

	const builds = 4
	images := make([][]byte, builds)
	errs := make([]error, builds)
	var wg sync.WaitGroup
	for g := 0; g < builds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := CTOLTBOPl(8)
			cfg.Workers = 8
			cfg.DetectShards = 4
			cfg.VerifyImage = true
			cfg.Tracer = NewTracer()
			res, err := Build(app, cfg)
			if err != nil {
				errs[g] = err
				return
			}
			images[g], errs[g] = MarshalImage(res.Image)
		}(g)
	}
	wg.Wait()
	for g := 0; g < builds; g++ {
		if errs[g] != nil {
			t.Fatalf("concurrent build %d: %v", g, errs[g])
		}
		if !bytes.Equal(images[g], want) {
			t.Errorf("concurrent build %d differs from serial reference (%d vs %d bytes)",
				g, len(images[g]), len(want))
		}
	}
}

// TestLintDeterministicAcrossWorkers corrupts a linked image and checks
// that the analyzer reports the same findings in the same order at every
// pool width — the property the oatlint -j flag relies on.
func TestLintDeterministicAcrossWorkers(t *testing.T) {
	app := wechatApp(t)
	res, err := Build(app, CTOLTBOPl(4))
	if err != nil {
		t.Fatal(err)
	}
	img := res.Image
	// Smash one word in every fourth method so findings come from many
	// methods at once and any ordering bug across goroutines shows up.
	for i := 0; i < len(img.Methods); i += 4 {
		m := img.Methods[i]
		if m.Size == 0 {
			continue
		}
		img.Text[m.Offset/4] = 0xFFFFFFFF
	}
	serial := AnalyzeImage(img)
	if len(serial.Findings) == 0 {
		t.Fatal("corrupted image produced no findings")
	}
	for _, j := range []int{1, 2, 8} {
		rep := AnalyzeImageParallel(img, j)
		if !reflect.DeepEqual(serial.Findings, rep.Findings) {
			t.Errorf("-j %d: findings differ from serial analysis", j)
		}
		if !reflect.DeepEqual(LintImage(img), LintImageParallel(img, j)) {
			t.Errorf("-j %d: lint filter differs from serial lint", j)
		}
	}
}
