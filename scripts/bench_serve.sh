#!/bin/sh
# bench_serve.sh — the serving benchmark: boot calibrod, replay the
# seeded calibroload workload at full scale, and append the run (client
# latency percentiles, queue wait, cache hit rate, served/rejected) to
# BENCH_serve.json via cmd/benchjson -append, which stamps host CPU
# count, GOMAXPROCS, and Go version next to the numbers so runs stay
# comparable across machines.
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d)"
LOG="$DIR/calibrod.log"
PID=""

SEED="${SEED:-1}"
N="${N:-120}"
RATE="${RATE:-30}"
SCALE="${SCALE:-0.1}"

cleanup() {
	status=$?
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	if [ "$status" -ne 0 ]; then
		echo "bench-serve: FAILED; daemon log:" >&2
		cat "$LOG" >&2 || true
	fi
	rm -rf "$DIR"
	exit "$status"
}
trap cleanup EXIT INT TERM

echo "bench-serve: building binaries"
$GO build -o "$DIR/calibrod" ./cmd/calibrod
$GO build -o "$DIR/calibroload" ./cmd/calibroload

"$DIR/calibrod" -addr 127.0.0.1:0 -scale "$SCALE" -queue 64 -jobs 2 \
	-max-body 65536 >"$LOG" 2>&1 &
PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR="$(sed -n 's/^calibrod: listening on //p' "$LOG")"
	[ -n "$ADDR" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "bench-serve: calibrod died at startup" >&2; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "bench-serve: calibrod never announced its address" >&2; exit 1; }
echo "bench-serve: daemon at $ADDR, replaying seed=$SEED n=$N rate=$RATE"

"$DIR/calibroload" -addr "$ADDR" -seed "$SEED" -n "$N" -rate "$RATE" -bench \
	| $GO run ./cmd/benchjson -append -o BENCH_serve.json \
		-note "seed=$SEED n=$N rate=$RATE scale=$SCALE"

kill -TERM "$PID"
wait "$PID" || { echo "bench-serve: calibrod exited non-zero" >&2; exit 1; }
PID=""
echo "bench-serve: OK"
