#!/bin/sh
# bench_serve.sh — the serving benchmark: boot calibrod, replay the
# seeded calibroload workload at full scale, and append the run (client
# latency percentiles, queue wait, cache hit rate, served/rejected) to
# BENCH_serve.json via cmd/benchjson -append, which stamps host CPU
# count, GOMAXPROCS, and Go version next to the numbers so runs stay
# comparable across machines.
#
# Two configurations land in the archive per invocation: the
# single-daemon baseline, then a two-daemon fleet sharing a calibrocached
# remote tier and replaying the identical plan through the
# consistent-hash router (calibroload stamps the bench name with
# /fleet=2, so the rows stay distinguishable).
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d)"
PID=""
APID=""
BPID=""
CPID=""

SEED="${SEED:-1}"
N="${N:-120}"
RATE="${RATE:-30}"
SCALE="${SCALE:-0.1}"

cleanup() {
	status=$?
	for pid in "$PID" "$APID" "$BPID" "$CPID"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	if [ "$status" -ne 0 ]; then
		echo "bench-serve: FAILED; logs:" >&2
		cat "$DIR"/*.log >&2 || true
	fi
	rm -rf "$DIR"
	exit "$status"
}
trap cleanup EXIT INT TERM

# wait_addr LOG PREFIX PID
wait_addr() {
	_addr=""
	i=0
	while [ $i -lt 100 ]; do
		_addr="$(sed -n "s/^$2: listening on //p" "$1")"
		[ -n "$_addr" ] && break
		kill -0 "$3" 2>/dev/null || { echo "bench-serve: $2 died at startup" >&2; exit 1; }
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$_addr" ] || { echo "bench-serve: $2 never announced its address" >&2; exit 1; }
	echo "$_addr"
}

echo "bench-serve: building binaries"
$GO build -o "$DIR/calibrod" ./cmd/calibrod
$GO build -o "$DIR/calibrocached" ./cmd/calibrocached
$GO build -o "$DIR/calibroload" ./cmd/calibroload

"$DIR/calibrod" -addr 127.0.0.1:0 -scale "$SCALE" -queue 64 -jobs 2 \
	-max-body 65536 >"$DIR/calibrod.log" 2>&1 &
PID=$!
ADDR="$(wait_addr "$DIR/calibrod.log" calibrod "$PID")"
echo "bench-serve: daemon at $ADDR, replaying seed=$SEED n=$N rate=$RATE"

"$DIR/calibroload" -addr "$ADDR" -seed "$SEED" -n "$N" -rate "$RATE" -bench \
	| $GO run ./cmd/benchjson -append -o BENCH_serve.json \
		-note "seed=$SEED n=$N rate=$RATE scale=$SCALE"

kill -TERM "$PID"
wait "$PID" || { echo "bench-serve: calibrod exited non-zero" >&2; exit 1; }
PID=""

echo "bench-serve: fleet run — 2 calibrod + calibrocached"
"$DIR/calibrocached" -addr 127.0.0.1:0 >"$DIR/calibrocached.log" 2>&1 &
CPID=$!
CACHED="$(wait_addr "$DIR/calibrocached.log" calibrocached "$CPID")"
"$DIR/calibrod" -addr 127.0.0.1:0 -scale "$SCALE" -queue 64 -jobs 2 \
	-max-body 65536 -remote-cache "http://$CACHED" >"$DIR/calibrod-a.log" 2>&1 &
APID=$!
"$DIR/calibrod" -addr 127.0.0.1:0 -scale "$SCALE" -queue 64 -jobs 2 \
	-max-body 65536 -remote-cache "http://$CACHED" >"$DIR/calibrod-b.log" 2>&1 &
BPID=$!
A="$(wait_addr "$DIR/calibrod-a.log" calibrod "$APID")"
B="$(wait_addr "$DIR/calibrod-b.log" calibrod "$BPID")"
echo "bench-serve: fleet at $A,$B via $CACHED"

"$DIR/calibroload" -fleet "$A,$B" -seed "$SEED" -n "$N" -rate "$RATE" -bench \
	| $GO run ./cmd/benchjson -append -o BENCH_serve.json \
		-note "seed=$SEED n=$N rate=$RATE scale=$SCALE fleet=2"

for pid in "$APID" "$BPID" "$CPID"; do
	kill -TERM "$pid"
done
wait "$APID" || { echo "bench-serve: calibrod A exited non-zero" >&2; exit 1; }
wait "$BPID" || { echo "bench-serve: calibrod B exited non-zero" >&2; exit 1; }
wait "$CPID" || { echo "bench-serve: calibrocached exited non-zero" >&2; exit 1; }
APID=""; BPID=""; CPID=""
echo "bench-serve: OK"
