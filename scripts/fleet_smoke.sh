#!/bin/sh
# fleet_smoke.sh — the ci guard for fleet mode: one calibrocached plus
# two calibrod daemons sharing it as a remote cache tier, driven by the
# fixed-seed calibroload plan twice.
#
# Phase 1 replays the plan against daemon A alone: A builds everything
# and publishes its artifacts to the shared tier. Phase 2 replays the
# identical plan across the {A,B} fleet through the consistent-hash
# router: submits that land on the cold daemon B must be answered from
# A's published artifacts, not rebuilt. The plan is a pure function of
# the seed, so both phases assert the exact same served/413 split —
# routing and the remote tier must not change what gets served — and
# phase 2 additionally asserts cross-daemon hits actually happened
# (daemon B's fleet_hits > 0, the cache server's get_hits > 0).
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d)"
CLOG="$DIR/calibrocached.log"
ALOG="$DIR/calibrod-a.log"
BLOG="$DIR/calibrod-b.log"
CPID=""
APID=""
BPID=""

# Constants of the seed (see replay_smoke.sh): 38 served, 2 hostile
# submits bounced with 413.
SEED=1
N=40
WANT_SERVED=38
WANT_413=2

cleanup() {
	status=$?
	for pid in "$APID" "$BPID" "$CPID"; do
		if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
			kill "$pid" 2>/dev/null || true
			wait "$pid" 2>/dev/null || true
		fi
	done
	if [ "$status" -ne 0 ]; then
		echo "fleet-smoke: FAILED; logs:" >&2
		for log in "$CLOG" "$ALOG" "$BLOG"; do
			echo "--- $log" >&2
			cat "$log" >&2 || true
		done
	fi
	rm -rf "$DIR"
	exit "$status"
}
trap cleanup EXIT INT TERM

# wait_addr LOG PREFIX PID: scrape the announced listen address.
wait_addr() {
	_addr=""
	i=0
	while [ $i -lt 100 ]; do
		_addr="$(sed -n "s/^$2: listening on //p" "$1")"
		[ -n "$_addr" ] && break
		kill -0 "$3" 2>/dev/null || { echo "fleet-smoke: $2 died at startup" >&2; exit 1; }
		sleep 0.1
		i=$((i + 1))
	done
	[ -n "$_addr" ] || { echo "fleet-smoke: $2 never announced its address" >&2; exit 1; }
	echo "$_addr"
}

# counter FILE NAME: extract an integer JSON field from a metrics dump.
counter() {
	sed -n "s/.*\"$2\": \([0-9][0-9]*\).*/\1/p" "$1" | head -n 1
}

echo "fleet-smoke: building binaries"
$GO build -o "$DIR/calibrocached" ./cmd/calibrocached
$GO build -o "$DIR/calibrod" ./cmd/calibrod
$GO build -o "$DIR/calibroload" ./cmd/calibroload

"$DIR/calibrocached" -addr 127.0.0.1:0 >"$CLOG" 2>&1 &
CPID=$!
CACHED="$(wait_addr "$CLOG" calibrocached "$CPID")"
echo "fleet-smoke: cache server at $CACHED"

"$DIR/calibrod" -addr 127.0.0.1:0 -scale 0.05 -queue 64 -jobs 2 \
	-max-body 65536 -remote-cache "http://$CACHED" >"$ALOG" 2>&1 &
APID=$!
"$DIR/calibrod" -addr 127.0.0.1:0 -scale 0.05 -queue 64 -jobs 2 \
	-max-body 65536 -remote-cache "http://$CACHED" >"$BLOG" 2>&1 &
BPID=$!
A="$(wait_addr "$ALOG" calibrod "$APID")"
B="$(wait_addr "$BLOG" calibrod "$BPID")"
echo "fleet-smoke: daemons at $A and $B"

# check_split OUT PHASE: the exact served/rejected split the seed
# dictates, and zero transport errors.
check_split() {
	counts="$(sed -n 's/^calibroload: \(served=.*\)$/\1/p' "$1")"
	case "$counts" in
	*"served=$WANT_SERVED "*) ;;
	*) echo "fleet-smoke: $2 served count drifted (want served=$WANT_SERVED): $counts" >&2; exit 1 ;;
	esac
	case "$counts" in
	*"413=$WANT_413 "*) ;;
	*) echo "fleet-smoke: $2 413 count drifted (want 413=$WANT_413): $counts" >&2; exit 1 ;;
	esac
	case "$counts" in
	*"errors=0"*) ;;
	*) echo "fleet-smoke: $2 transport errors: $counts" >&2; exit 1 ;;
	esac
}

echo "fleet-smoke: phase 1 — warm daemon A through the remote tier"
"$DIR/calibroload" -addr "$A" -seed "$SEED" -n "$N" -rate 40 >"$DIR/phase1.out"
cat "$DIR/phase1.out"
check_split "$DIR/phase1.out" "phase 1"

# Daemon A published its artifacts to the shared tier.
curl -fsS "http://$CACHED/metrics" >"$DIR/cached1.json"
PUTS="$(counter "$DIR/cached1.json" puts)"
[ "${PUTS:-0}" -gt 0 ] || { echo "fleet-smoke: daemon A published no artifacts (puts=$PUTS)" >&2; exit 1; }

echo "fleet-smoke: phase 2 — identical plan across the {A,B} fleet"
"$DIR/calibroload" -fleet "$A,$B" -seed "$SEED" -n "$N" -rate 40 >"$DIR/phase2.out"
cat "$DIR/phase2.out"
check_split "$DIR/phase2.out" "phase 2"

# Cross-daemon sharing happened: the cold daemon B answered jobs from
# the fleet tier instead of rebuilding, and the cache server served
# those fetches.
curl -fsS "http://$B/metrics" >"$DIR/b.json"
B_FLEET_HITS="$(counter "$DIR/b.json" fleet_hits)"
B_DONE="$(counter "$DIR/b.json" jobs_done)"
[ "${B_DONE:-0}" -gt 0 ] || { echo "fleet-smoke: router sent daemon B no jobs" >&2; exit 1; }
[ "${B_FLEET_HITS:-0}" -gt 0 ] || { echo "fleet-smoke: daemon B served $B_DONE jobs but hit no fleet artifacts" >&2; exit 1; }
curl -fsS "http://$CACHED/metrics" >"$DIR/cached2.json"
GET_HITS="$(counter "$DIR/cached2.json" get_hits)"
[ "${GET_HITS:-0}" -gt 0 ] || { echo "fleet-smoke: cache server served no hits (get_hits=$GET_HITS)" >&2; exit 1; }
echo "fleet-smoke: daemon B: jobs_done=$B_DONE fleet_hits=$B_FLEET_HITS; cached: puts=$PUTS get_hits=$GET_HITS"

# The remote-tier counter families are on daemon B's prom exposition.
curl -fsS "http://$B/metrics?format=prom" >"$DIR/b.prom"
for fam in calibrod_fleet_jobs_total calibrod_cache_remote_hits_total calibrod_cache_remote_errors_total; do
	grep -q "^# TYPE $fam counter\$" "$DIR/b.prom" \
		|| { echo "fleet-smoke: prom exposition missing $fam" >&2; exit 1; }
done

echo "fleet-smoke: stopping fleet"
for pid in "$APID" "$BPID" "$CPID"; do
	kill -TERM "$pid"
done
wait "$APID" || { echo "fleet-smoke: calibrod A exited non-zero" >&2; exit 1; }
wait "$BPID" || { echo "fleet-smoke: calibrod B exited non-zero" >&2; exit 1; }
wait "$CPID" || { echo "fleet-smoke: calibrocached exited non-zero" >&2; exit 1; }
APID=""; BPID=""; CPID=""
grep -q '^calibrocached: bye$' "$CLOG" || { echo "fleet-smoke: cache server did not exit cleanly" >&2; exit 1; }

echo "fleet-smoke: OK"
