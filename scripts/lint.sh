#!/bin/sh
# lint.sh runs the static checkers: go vet always, and staticcheck when a
# binary is available. staticcheck is pinned to 2025.1 (the release
# validated against this module's go directive); any other version prints
# a warning but still runs, since analyzer sets drift between releases.
#
# The staticcheck gate keeps `make lint` (and thus `make ci`) green on
# hermetic builders that bake in only the go toolchain: vet is the floor
# every change must clear, staticcheck the deeper pass developers and CI
# images with the tool installed get for free.
set -eu

GO="${GO:-go}"
STATICCHECK_VERSION="2025.1"

"$GO" vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    got="$(staticcheck -version 2>/dev/null || true)"
    case "$got" in
    *"$STATICCHECK_VERSION"*) ;;
    *)
        echo "lint.sh: warning: staticcheck is not the pinned $STATICCHECK_VERSION: $got" >&2
        ;;
    esac
    staticcheck ./...
else
    echo "lint.sh: staticcheck not installed; ran go vet only (pin: staticcheck $STATICCHECK_VERSION)" >&2
fi
