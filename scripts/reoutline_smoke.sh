#!/bin/sh
# reoutline_smoke.sh — build the fixed-seed Taobao app without link-time
# outlining, re-outline it post hoc through the calibro CLI, and assert
# the pass saved bytes, closed the gap to the link-time build, survives
# oatlint, dumps [reoutlined] provenance, and composes with -debloat.
# This is the ci guard that the post-hoc pipeline works from the shipped
# binaries, not just from the unit tests.
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT INT TERM

echo "reoutline-smoke: building binaries"
$GO build -o "$DIR/calibro" ./cmd/calibro
$GO build -o "$DIR/oatlint" ./cmd/oatlint
$GO build -o "$DIR/oatdump" ./cmd/oatdump

APP="-app Taobao -scale 0.05"

echo "reoutline-smoke: plain and link-time builds"
"$DIR/calibro" $APP -config cto -o "$DIR/plain.oat" >/dev/null
"$DIR/calibro" $APP -config ltbo -o "$DIR/linked.oat" >/dev/null

echo "reoutline-smoke: re-outlining the plain build"
"$DIR/calibro" $APP -config cto -reoutline -o "$DIR/reout.oat" >"$DIR/reout.log"
SAVED="$(sed -n 's/^reoutline: text .* (\([0-9][0-9]*\) bytes saved)$/\1/p' "$DIR/reout.log")"
if [ -z "$SAVED" ] || [ "$SAVED" -le 0 ]; then
	echo "reoutline-smoke: no savings reported; calibro output:" >&2
	cat "$DIR/reout.log" >&2
	exit 1
fi
echo "reoutline-smoke: saved $SAVED bytes"

# The re-outlined image must land within 10% of the link-time build.
LINKED="$(wc -c <"$DIR/linked.oat")"
REOUT="$(wc -c <"$DIR/reout.oat")"
if [ "$REOUT" -gt $((LINKED + LINKED / 10)) ]; then
	echo "reoutline-smoke: gap too wide: re-outlined $REOUT bytes vs link-time $LINKED bytes" >&2
	exit 1
fi

echo "reoutline-smoke: linting the re-outlined image"
"$DIR/oatlint" "$DIR/reout.oat" >/dev/null || {
	echo "reoutline-smoke: oatlint found problems in the re-outlined image" >&2
	"$DIR/oatlint" "$DIR/reout.oat" >&2 || true
	exit 1
}

"$DIR/oatdump" -i "$DIR/reout.oat" -thunks | grep -q '\[reoutlined\]' || {
	echo "reoutline-smoke: oatdump shows no [reoutlined] provenance" >&2
	exit 1
}

echo "reoutline-smoke: debloat + reoutline composition"
"$DIR/calibro" -debloat "$DIR/plain.oat" -roots 0,1,2 -reoutline -o "$DIR/dr.oat" >/dev/null
"$DIR/oatlint" "$DIR/dr.oat" >/dev/null || {
	echo "reoutline-smoke: oatlint found problems in the debloated+re-outlined image" >&2
	exit 1
}

echo "reoutline-smoke: OK"
