#!/bin/sh
# replay_smoke.sh — the ci guard for the serving-path observability
# surface: boot calibrod with logging, a tight body bound, and a deep
# queue; replay a fixed-seed calibroload workload; and assert the exact
# served/rejected split the seed dictates. The queue is deep enough that
# no submit can hit a timing-dependent 429, so every rejection comes from
# the seeded oversized (hostile) submits and the counts are
# deterministic. Also checks the prom exposition, a per-job trace, and
# that the JSON log captured the traffic.
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d)"
LOG="$DIR/calibrod.log"
JLOG="$DIR/events.log"
PID=""

# The fixed plan: seed 1, 40 submits, 10% hostile. buildPlan is a pure
# function of the seed, so these are constants of the binary, not of the
# host: 38 jobs served, 2 oversized submits bounced with 413.
SEED=1
N=40
WANT_SERVED=38
WANT_413=2

cleanup() {
	status=$?
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	if [ "$status" -ne 0 ]; then
		echo "replay-smoke: FAILED; daemon log:" >&2
		cat "$LOG" >&2 || true
	fi
	rm -rf "$DIR"
	exit "$status"
}
trap cleanup EXIT INT TERM

echo "replay-smoke: building binaries"
$GO build -o "$DIR/calibrod" ./cmd/calibrod
$GO build -o "$DIR/calibroctl" ./cmd/calibroctl
$GO build -o "$DIR/calibroload" ./cmd/calibroload

"$DIR/calibrod" -addr 127.0.0.1:0 -scale 0.05 -queue 64 -jobs 2 \
	-max-body 65536 -log "$JLOG" >"$LOG" 2>&1 &
PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR="$(sed -n 's/^calibrod: listening on //p' "$LOG")"
	[ -n "$ADDR" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "replay-smoke: calibrod died at startup" >&2; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "replay-smoke: calibrod never announced its address" >&2; exit 1; }
echo "replay-smoke: daemon at $ADDR"

"$DIR/calibroload" -addr "$ADDR" -seed "$SEED" -n "$N" -rate 40 >"$DIR/replay.out"
cat "$DIR/replay.out"

COUNTS="$(sed -n 's/^calibroload: \(served=.*\)$/\1/p' "$DIR/replay.out")"
case "$COUNTS" in
*"served=$WANT_SERVED "*) ;;
*) echo "replay-smoke: served count drifted (want served=$WANT_SERVED): $COUNTS" >&2; exit 1 ;;
esac
case "$COUNTS" in
*"413=$WANT_413 "*) ;;
*) echo "replay-smoke: 413 count drifted (want 413=$WANT_413): $COUNTS" >&2; exit 1 ;;
esac
case "$COUNTS" in
*"errors=0"*) ;;
*) echo "replay-smoke: transport errors: $COUNTS" >&2; exit 1 ;;
esac

CTL="$DIR/calibroctl -addr $ADDR"

# Prometheus exposition: declared families, the right totals.
$CTL metrics -prom >"$DIR/metrics.prom"
grep -q "^calibrod_jobs_total{state=\"done\"} $WANT_SERVED\$" "$DIR/metrics.prom" \
	|| { echo "replay-smoke: prom done total wrong" >&2; cat "$DIR/metrics.prom" >&2; exit 1; }
grep -q "^calibrod_submits_invalid_total $WANT_413\$" "$DIR/metrics.prom" \
	|| { echo "replay-smoke: prom invalid total wrong" >&2; exit 1; }
grep -q '^calibrod_job_duration_seconds_bucket' "$DIR/metrics.prom" \
	|| { echo "replay-smoke: prom missing latency histogram" >&2; exit 1; }

# Per-job trace: submit one more job and fetch its span tree.
ID="$($CTL submit -app Taobao -config ltbo)"
$CTL wait "$ID" >/dev/null
$CTL trace "$ID" >"$DIR/trace.json"
grep -q '"queued"' "$DIR/trace.json" || { echo "replay-smoke: trace missing queued span" >&2; exit 1; }
grep -q '"done"' "$DIR/trace.json" || { echo "replay-smoke: trace missing terminal event" >&2; exit 1; }

# The JSON log saw the traffic.
grep -q '"event":"job_finish"' "$JLOG" || { echo "replay-smoke: log missing job_finish events" >&2; exit 1; }
grep -q '"event":"http_access"' "$JLOG" || { echo "replay-smoke: log missing http_access events" >&2; exit 1; }

echo "replay-smoke: stopping daemon"
kill -TERM "$PID"
wait "$PID" || { echo "replay-smoke: calibrod exited non-zero" >&2; exit 1; }
PID=""

echo "replay-smoke: OK"
