#!/bin/sh
# serve_smoke.sh — boot calibrod on a random port, drive one job through
# calibroctl (submit -> wait -> fetch), check /healthz and /metrics, then
# shut the daemon down with SIGTERM and require a clean drain. This is
# the ci guard that the daemon actually serves, not just compiles.
set -eu

GO="${GO:-go}"
DIR="$(mktemp -d)"
LOG="$DIR/calibrod.log"
PID=""

cleanup() {
	status=$?
	if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
		kill "$PID" 2>/dev/null || true
		wait "$PID" 2>/dev/null || true
	fi
	if [ "$status" -ne 0 ]; then
		echo "serve-smoke: FAILED; daemon log:" >&2
		cat "$LOG" >&2 || true
	fi
	rm -rf "$DIR"
	exit "$status"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
$GO build -o "$DIR/calibrod" ./cmd/calibrod
$GO build -o "$DIR/calibroctl" ./cmd/calibroctl

"$DIR/calibrod" -addr 127.0.0.1:0 -scale 0.05 -queue 4 -jobs 2 >"$LOG" 2>&1 &
PID=$!

# The first log line announces the resolved address.
ADDR=""
i=0
while [ $i -lt 100 ]; do
	ADDR="$(sed -n 's/^calibrod: listening on //p' "$LOG")"
	[ -n "$ADDR" ] && break
	kill -0 "$PID" 2>/dev/null || { echo "serve-smoke: calibrod died at startup" >&2; exit 1; }
	sleep 0.1
	i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "serve-smoke: calibrod never announced its address" >&2; exit 1; }
echo "serve-smoke: daemon at $ADDR"

CTL="$DIR/calibroctl -addr $ADDR"

$CTL health | grep -q '"status": "ok"' || { echo "serve-smoke: healthz not ok" >&2; exit 1; }

ID="$($CTL submit -app Taobao -config plopti)"
echo "serve-smoke: submitted $ID"
$CTL wait "$ID" >"$DIR/wait.json"
grep -q '"state": "done"' "$DIR/wait.json" || { echo "serve-smoke: job did not finish done" >&2; cat "$DIR/wait.json" >&2; exit 1; }

$CTL stats "$ID" | grep -q '"image_bytes"' || { echo "serve-smoke: stats missing image_bytes" >&2; exit 1; }

$CTL fetch "$ID" -o "$DIR/app.oat" >/dev/null
[ -s "$DIR/app.oat" ] || { echo "serve-smoke: fetched image is empty" >&2; exit 1; }

$CTL metrics >"$DIR/metrics.json"
for field in queue_wait jobs_done cache_hit_rate; do
	grep -q "\"$field\"" "$DIR/metrics.json" || { echo "serve-smoke: metrics missing $field" >&2; exit 1; }
done
grep -q '"jobs_done": 1' "$DIR/metrics.json" || { echo "serve-smoke: metrics did not count the job" >&2; exit 1; }

echo "serve-smoke: stopping daemon"
kill -TERM "$PID"
if ! wait "$PID"; then
	echo "serve-smoke: calibrod exited non-zero on SIGTERM" >&2
	exit 1
fi
PID=""
grep -q '^calibrod: draining$' "$LOG" || { echo "serve-smoke: no drain message in log" >&2; exit 1; }
grep -q '^calibrod: bye$' "$LOG" || { echo "serve-smoke: no clean-exit message in log" >&2; exit 1; }

echo "serve-smoke: OK"
