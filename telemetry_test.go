package calibro

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// tracedBuild runs the full CTO+LTBO+PlOpti pipeline (verifier on, so the
// lint lanes trace too) with the given tracer and returns the marshaled
// image bytes.
func tracedBuild(t *testing.T, app *App, workers int, tracer *Tracer) []byte {
	t.Helper()
	cfg := CTOLTBOPl(8)
	cfg.VerifyImage = true
	cfg.Workers = workers
	cfg.Tracer = tracer
	res, err := Build(app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalImage(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestBuildDeterministicWithTracing pins the telemetry half of the
// determinism contract: a live tracer observes the build but never steers
// it, so the image is byte-identical whether Config.Tracer is nil or
// recording, at a parallel pool width.
func TestBuildDeterministicWithTracing(t *testing.T) {
	app := wechatApp(t)
	plain := tracedBuild(t, app, 3, nil)
	traced := tracedBuild(t, app, 3, NewTracer())
	if !bytes.Equal(plain, traced) {
		t.Errorf("image differs with tracing on (%d vs %d bytes)", len(traced), len(plain))
	}
}

// TestTraceExportShape builds with a live tracer at -j 3 and validates the
// exported Chrome trace: parseable JSON, events sorted by timestamp,
// every duration event carrying pid/tid/ts/dur, and no task lane beyond
// the pool width.
func TestTraceExportShape(t *testing.T) {
	const workers = 3
	app := wechatApp(t)
	tracer := NewTracer()
	tracedBuild(t, app, workers, tracer)

	var buf bytes.Buffer
	if err := tracer.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var spans, tasks int
	lastTS := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue // metadata events carry no timestamp
		}
		if ev.Pid == nil || ev.Tid == nil || ev.Ts == nil {
			t.Fatalf("event %q (%s) missing pid/tid/ts", ev.Name, ev.Ph)
		}
		if *ev.Ts < lastTS {
			t.Fatalf("event %q out of timestamp order (%v after %v)", ev.Name, *ev.Ts, lastTS)
		}
		lastTS = *ev.Ts
		if ev.Ph == "X" {
			spans++
			if ev.Dur == nil {
				t.Fatalf("complete event %q has no dur", ev.Name)
			}
			if *ev.Tid > workers {
				t.Errorf("event %q on lane %d, beyond pool width %d", ev.Name, *ev.Tid, workers)
			}
			if *ev.Tid > 0 {
				tasks++
			}
		}
	}
	if spans == 0 {
		t.Fatal("trace holds no complete events")
	}
	if tasks == 0 {
		t.Fatal("no task ran on a worker lane")
	}
}

// TestMetricsSnapshotContent checks the aggregated metrics of a traced
// build: every pipeline stage present, the compile task count equal to
// the method count, queue-wait populated for pooled categories, and the
// outline counters forwarded from outline.Stats.
func TestMetricsSnapshotContent(t *testing.T) {
	app := wechatApp(t)
	tracer := NewTracer()
	tracedBuild(t, app, 3, tracer)
	snap := tracer.Snapshot()

	for _, stage := range []string{"compile", "outline", "link", "verify"} {
		if snap.Stages[stage] <= 0 {
			t.Errorf("stage %q missing from snapshot (stages: %v)", stage, snap.Stages)
		}
	}
	if snap.WallUS <= 0 {
		t.Error("snapshot has no wall time")
	}
	ct := snap.Tasks["compile"]
	if ct.Count != app.NumMethods() {
		t.Errorf("compile tasks = %d, want one per method (%d)", ct.Count, app.NumMethods())
	}
	if ct.P50US > ct.P95US || ct.P95US > ct.MaxUS {
		t.Errorf("compile percentiles not monotone: p50=%d p95=%d max=%d", ct.P50US, ct.P95US, ct.MaxUS)
	}
	if _, ok := snap.QueueWait["compile"]; !ok {
		t.Error("compile queue-wait distribution missing")
	}
	if len(snap.Workers) == 0 {
		t.Error("no worker occupancy recorded")
	}
	for _, name := range []string{
		"outline.candidate_methods", "outline.outlined_functions",
		"outline.outlined_occurrences", "outline.words_removed",
		"lint.methods",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing (have %v)", name, snap.Counters)
		}
	}

	var buf bytes.Buffer
	if err := tracer.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var round obs.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("metrics JSON does not round-trip: %v", err)
	}
	if round.Tasks["compile"].Count != ct.Count {
		t.Errorf("round-tripped compile count = %d, want %d", round.Tasks["compile"].Count, ct.Count)
	}
}
